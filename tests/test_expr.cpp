// Unit tests for MiniMP integer expressions: evaluation semantics
// (including Euclidean modulo and division-by-zero), rank/irregular
// dependence analysis, rendering, and structural equality.
#include <gtest/gtest.h>

#include "mp/expr.h"

namespace {

using acfc::mp::EvalCtx;
using acfc::mp::Expr;
using acfc::mp::ExprKind;
using acfc::mp::IrregularRequest;
using acfc::mp::IrregularResolver;

EvalCtx ctx(int rank, int nprocs) {
  EvalCtx c;
  c.rank = rank;
  c.nprocs = nprocs;
  return c;
}

TEST(Expr, ConstantEvaluates) {
  EXPECT_EQ(Expr::constant(7).eval(ctx(0, 4)), 7);
}

TEST(Expr, RankAndNProcs) {
  EXPECT_EQ(Expr::rank().eval(ctx(3, 8)), 3);
  EXPECT_EQ(Expr::nprocs().eval(ctx(3, 8)), 8);
}

TEST(Expr, Arithmetic) {
  const Expr e = (Expr::rank() + Expr::constant(1)) * Expr::constant(2);
  EXPECT_EQ(e.eval(ctx(4, 8)), 10);
  EXPECT_EQ((Expr::constant(7) - Expr::constant(10)).eval(ctx(0, 1)), -3);
  EXPECT_EQ((Expr::constant(7) / Expr::constant(2)).eval(ctx(0, 1)), 3);
}

TEST(Expr, EuclideanModulo) {
  // (rank - 1 + nprocs) % nprocs is the canonical left-neighbour idiom;
  // plain % must also behave for negative operands.
  EXPECT_EQ((Expr::constant(-1) % Expr::constant(4)).eval(ctx(0, 1)), 3);
  EXPECT_EQ((Expr::constant(5) % Expr::constant(4)).eval(ctx(0, 1)), 1);
  const Expr left = (Expr::rank() - Expr::constant(1) + Expr::nprocs()) %
                    Expr::nprocs();
  EXPECT_EQ(left.eval(ctx(0, 4)), 3);
  EXPECT_EQ(left.eval(ctx(2, 4)), 1);
}

TEST(Expr, DivisionByZeroIsUnknown) {
  EXPECT_FALSE((Expr::constant(1) / Expr::constant(0)).eval(ctx(0, 1)));
  EXPECT_FALSE((Expr::constant(1) % Expr::constant(0)).eval(ctx(0, 1)));
}

TEST(Expr, LoopVarLookup) {
  EvalCtx c = ctx(0, 4);
  c.env.emplace_back("i", 5);
  EXPECT_EQ(Expr::loop_var("i").eval(c), 5);
  EXPECT_FALSE(Expr::loop_var("j").eval(c));
}

TEST(Expr, InnermostLoopVarShadows) {
  EvalCtx c = ctx(0, 4);
  c.env.emplace_back("i", 1);
  c.env.emplace_back("i", 2);
  EXPECT_EQ(Expr::loop_var("i").eval(c), 2);
}

TEST(Expr, IrregularWithoutResolverIsUnknown) {
  EXPECT_FALSE(Expr::irregular(3).eval(ctx(0, 4)));
}

TEST(Expr, IrregularWithResolver) {
  IrregularResolver resolver = [](const IrregularRequest& req) {
    return req.irregular_id * 100 + req.rank;
  };
  EvalCtx c = ctx(2, 4);
  c.resolver = &resolver;
  EXPECT_EQ(Expr::irregular(3).eval(c), 302);
}

TEST(Expr, DependsOnRank) {
  EXPECT_TRUE(Expr::rank().depends_on_rank());
  EXPECT_TRUE((Expr::rank() + Expr::constant(1)).depends_on_rank());
  EXPECT_FALSE(Expr::nprocs().depends_on_rank());
  EXPECT_FALSE(Expr::constant(2).depends_on_rank());
  EXPECT_FALSE(Expr::irregular(1).depends_on_rank());
}

TEST(Expr, HasIrregular) {
  EXPECT_TRUE((Expr::rank() + Expr::irregular(1)).has_irregular());
  EXPECT_FALSE((Expr::rank() + Expr::constant(1)).has_irregular());
}

TEST(Expr, LoopVarsCollectsDeduplicated) {
  const Expr e = Expr::loop_var("i") + Expr::loop_var("j") * Expr::loop_var("i");
  const auto vars = e.loop_vars();
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0], "i");
  EXPECT_EQ(vars[1], "j");
}

TEST(Expr, StrRendering) {
  EXPECT_EQ(Expr::rank().str(), "rank");
  EXPECT_EQ((Expr::rank() + Expr::constant(1)).str(), "rank + 1");
  EXPECT_EQ(((Expr::rank() + Expr::constant(1)) % Expr::constant(2)).str(),
            "(rank + 1) % 2");
  EXPECT_EQ(Expr::irregular(5).str(), "irregular(5)");
}

TEST(Expr, StrParenthesizesNonAssociativeRight) {
  // a - (b - c) must not print as a - b - c.
  const Expr e = Expr::constant(1) - (Expr::constant(2) - Expr::constant(3));
  EXPECT_EQ(e.str(), "1 - (2 - 3)");
}

TEST(Expr, StructuralEquality) {
  const Expr a = Expr::rank() + Expr::constant(1);
  const Expr b = Expr::rank() + Expr::constant(1);
  const Expr c = Expr::rank() + Expr::constant(2);
  EXPECT_TRUE(a.equals(b));
  EXPECT_FALSE(a.equals(c));
  EXPECT_FALSE(a.equals(Expr::rank()));
}

TEST(Expr, KindAccessors) {
  const Expr e = Expr::rank() + Expr::constant(1);
  EXPECT_EQ(e.kind(), ExprKind::kAdd);
  EXPECT_EQ(e.lhs().kind(), ExprKind::kRank);
  EXPECT_EQ(e.rhs().const_value(), 1);
  // Nested accessor chaining must be safe.
  const Expr nested = (Expr::rank() + Expr::constant(1)) + Expr::constant(2);
  EXPECT_EQ(nested.lhs().lhs().kind(), ExprKind::kRank);
  EXPECT_EQ(nested.lhs().rhs().const_value(), 1);
}

TEST(Expr, DefaultConstructsZero) {
  Expr e;
  EXPECT_EQ(e.kind(), ExprKind::kConst);
  EXPECT_EQ(e.const_value(), 0);
}

}  // namespace
