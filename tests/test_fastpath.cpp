// Differential tests for the fast-path analysis engine: the hop-closure
// Condition-1 checker vs the legacy per-pair product-graph BFS, incremental
// repair (witness memo + dirty-collection rechecking) vs the original
// rebuild-everything fixpoint, and the memoized satisfiability cache vs the
// plain bounded enumeration. Every fast path must be bit-for-bit equivalent
// to the path it replaces.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "attr/attr.h"
#include "cfg/cfg.h"
#include "match/match.h"
#include "mp/generate.h"
#include "mp/parser.h"
#include "mp/printer.h"
#include "place/place.h"

namespace {

using namespace acfc;
using place::CheckOptions;
using place::CheckResult;
using place::RepairOptions;
using place::RepairPolicy;

// The misaligned Jacobi exchange of the paper's running example: even ranks
// checkpoint before the exchange, odd ranks after, so both orientations of
// the S_1 pair are causally related (even→odd same-instance, odd→even
// loop-carried).
constexpr const char* kJacobi2 = R"(
  program jacobi2 {
    for it in 0 .. 10 {
      compute 5.0;
      if (rank % 2 == 0) {
        checkpoint "even";
        send to rank + 1 tag 1;
        recv from rank + 1 tag 1;
      } else {
        send to rank - 1 tag 1;
        recv from rank - 1 tag 1;
        checkpoint "odd";
      }
    }
  })";

mp::Program generated(std::uint64_t seed, int segments) {
  mp::GenerateOptions opts;
  opts.seed = seed;
  opts.segments = segments;
  opts.misalign_checkpoints = true;
  return mp::generate_program(opts);
}

using ViolationKey = std::tuple<int, cfg::NodeId, cfg::NodeId, int, int, bool>;

std::vector<ViolationKey> keys_of(const CheckResult& result) {
  std::vector<ViolationKey> keys;
  keys.reserve(result.violations.size());
  for (const auto& v : result.violations)
    keys.emplace_back(v.index, v.from, v.to, v.from_ckpt_id, v.to_ckpt_id,
                      v.hard);
  return keys;
}

// ---------------------------------------------------------------------------
// Condition 1: hop closure vs per-pair BFS
// ---------------------------------------------------------------------------

TEST(FastPathCheck, MatchesLegacyAcrossSeedsAndSizes) {
  for (const std::uint64_t seed : {1u, 7u, 42u, 99u}) {
    for (const int segments : {6, 12, 20, 28}) {
      const mp::Program p = generated(seed, segments);
      const match::ExtendedCfg ext = match::build_extended_cfg(p);
      CheckOptions fast;
      CheckOptions legacy;
      legacy.legacy_pairwise = true;
      const CheckResult a = place::check_condition1(ext, fast);
      const CheckResult b = place::check_condition1(ext, legacy);
      EXPECT_EQ(keys_of(a), keys_of(b))
          << "seed=" << seed << " segments=" << segments;
    }
  }
}

TEST(FastPathCheck, MatchesLegacyWithRefinement) {
  for (const std::uint64_t seed : {3u, 17u}) {
    const mp::Program p = generated(seed, 14);
    const match::ExtendedCfg ext = match::build_extended_cfg(p);
    CheckOptions fast;
    fast.attribute_refinement = true;
    CheckOptions legacy = fast;
    legacy.legacy_pairwise = true;
    EXPECT_EQ(keys_of(place::check_condition1(ext, fast)),
              keys_of(place::check_condition1(ext, legacy)))
        << "seed=" << seed;
  }
}

TEST(FastPathCheck, ClassifyAllFromMatchesPairwiseForEveryTarget) {
  const mp::Program p = generated(/*seed=*/5, /*segments=*/12);
  const match::ExtendedCfg ext = match::build_extended_cfg(p);
  const int n = ext.graph().node_count();
  for (cfg::NodeId from = 0; from < n; ++from) {
    const auto all = ext.classify_all_from(from);
    ASSERT_EQ(static_cast<int>(all.size()), n);
    for (cfg::NodeId to = 0; to < n; ++to) {
      const match::PathClass pair = ext.classify_paths(from, to);
      EXPECT_EQ(all[static_cast<size_t>(to)].has_message_path,
                pair.has_message_path)
          << "from=" << from << " to=" << to;
      EXPECT_EQ(all[static_cast<size_t>(to)].message_path_without_back_edge,
                pair.message_path_without_back_edge)
          << "from=" << from << " to=" << to;
    }
  }
}

TEST(FastPathCheck, BothOrientationsReportedOnMisalignedJacobi) {
  const mp::Program p = mp::parse(kJacobi2);
  const match::ExtendedCfg ext = match::build_extended_cfg(p);
  const CheckResult result = place::check_condition1(ext);
  // The even→odd orientation is same-instance (hard); odd→even needs the
  // loop back edge. A checker that only scans one orientation of each pair
  // (the naive "half the pairs" optimization) misses one of these.
  bool fwd = false;
  bool rev = false;
  for (const auto& v : result.violations) {
    if (v.from == v.to) continue;
    if (v.hard) fwd = true;
    if (!v.hard) rev = true;
    // Its mirror must also be reported (with some classification).
    bool mirrored = false;
    for (const auto& w : result.violations)
      mirrored = mirrored || (w.from == v.to && w.to == v.from);
    EXPECT_TRUE(mirrored) << "violation " << v.from << "->" << v.to
                          << " has no mirrored orientation";
  }
  EXPECT_TRUE(fwd);
  EXPECT_TRUE(rev);

  CheckOptions legacy;
  legacy.legacy_pairwise = true;
  EXPECT_EQ(keys_of(result), keys_of(place::check_condition1(ext, legacy)));
}

TEST(FastPathCheck, EdgeSpansCoverTheEdgeList) {
  const mp::Program p = generated(/*seed=*/11, /*segments=*/16);
  const match::ExtendedCfg ext = match::build_extended_cfg(p);
  const int n = ext.graph().node_count();
  size_t from_total = 0;
  size_t to_total = 0;
  for (cfg::NodeId id = 0; id < n; ++id) {
    for (const auto& e : ext.edges_from(id)) {
      EXPECT_EQ(e.send, id);
      ++from_total;
    }
    for (const auto& e : ext.edges_to(id)) {
      EXPECT_EQ(e.recv, id);
      ++to_total;
    }
  }
  EXPECT_EQ(from_total, ext.message_edges().size());
  EXPECT_EQ(to_total, ext.message_edges().size());
}

// ---------------------------------------------------------------------------
// Repair: incremental vs rebuild-everything
// ---------------------------------------------------------------------------

TEST(IncrementalRepair, MatchesLegacyReportAndProgram) {
  for (const std::uint64_t seed : {1u, 7u, 42u}) {
    for (const int segments : {8, 16, 24}) {
      mp::Program fast_p = generated(seed, segments);
      mp::Program slow_p = generated(seed, segments);

      RepairOptions fast;  // incremental + fast check + sat cache (default)
      RepairOptions slow;
      slow.incremental = false;
      slow.check.legacy_pairwise = true;
      slow.match.sat.use_cache = false;

      const auto a = place::repair_placement(fast_p, fast);
      const auto b = place::repair_placement(slow_p, slow);

      EXPECT_EQ(a.success, b.success) << "seed=" << seed << " seg=" << segments;
      EXPECT_EQ(a.moves, b.moves) << "seed=" << seed << " seg=" << segments;
      EXPECT_EQ(a.merges, b.merges) << "seed=" << seed << " seg=" << segments;
      EXPECT_EQ(a.hoists, b.hoists) << "seed=" << seed << " seg=" << segments;
      EXPECT_EQ(a.initial_hard, b.initial_hard);
      EXPECT_EQ(a.initial_total, b.initial_total);
      EXPECT_EQ(keys_of(a.final_check), keys_of(b.final_check));
      EXPECT_EQ(mp::print(fast_p), mp::print(slow_p))
          << "seed=" << seed << " seg=" << segments;
    }
  }
}

TEST(IncrementalRepair, MatchesLegacyOnHandWrittenCounterexample) {
  mp::Program fast_p = mp::parse(kJacobi2);
  mp::Program slow_p = mp::parse(kJacobi2);
  RepairOptions fast;
  RepairOptions slow;
  slow.incremental = false;
  slow.check.legacy_pairwise = true;
  const auto a = place::repair_placement(fast_p, fast);
  const auto b = place::repair_placement(slow_p, slow);
  EXPECT_TRUE(a.success);
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.moves, b.moves);
  EXPECT_EQ(mp::print(fast_p), mp::print(slow_p));
}

// ---------------------------------------------------------------------------
// Differential corpus (slow tier): the fast paths vs their legacy
// counterparts over hundreds of generated programs.
// ---------------------------------------------------------------------------

// 100 seeds × misaligned {off, on} = 200 programs, sizes cycling through
// 6..22 segments. Collectives and plain alignment are both represented, so
// the corpus covers shapes the small tier-1 grids above do not.
mp::Program corpus_program(int index, bool misalign) {
  mp::GenerateOptions opts;
  opts.seed = 0x5eedULL * 2654435761ULL + static_cast<std::uint64_t>(index);
  opts.segments = 6 + (index % 5) * 4;
  opts.misalign_checkpoints = misalign;
  return mp::generate_program(opts);
}

TEST(DifferentialCorpusSlow, HopClosureMatchesPairwiseOn200Programs) {
  int programs = 0;
  for (int index = 0; index < 100; ++index) {
    for (const bool misalign : {false, true}) {
      const mp::Program p = corpus_program(index, misalign);
      const match::ExtendedCfg ext = match::build_extended_cfg(p);
      CheckOptions fast;
      CheckOptions legacy;
      legacy.legacy_pairwise = true;
      EXPECT_EQ(keys_of(place::check_condition1(ext, fast)),
                keys_of(place::check_condition1(ext, legacy)))
          << "index=" << index << " misalign=" << misalign;
      ++programs;
    }
  }
  EXPECT_GE(programs, 200);
}

TEST(DifferentialCorpusSlow, IncrementalRepairMatchesFullOn200Programs) {
  int programs = 0;
  int repaired = 0;
  for (int index = 0; index < 100; ++index) {
    for (const bool misalign : {false, true}) {
      mp::Program fast_p = corpus_program(index, misalign);
      mp::Program slow_p = corpus_program(index, misalign);

      RepairOptions fast;  // incremental + hop closure + sat cache (default)
      RepairOptions slow;
      slow.incremental = false;
      slow.check.legacy_pairwise = true;
      slow.match.sat.use_cache = false;

      const auto a = place::repair_placement(fast_p, fast);
      const auto b = place::repair_placement(slow_p, slow);

      SCOPED_TRACE("index=" + std::to_string(index) +
                   " misalign=" + std::to_string(misalign));
      EXPECT_EQ(a.success, b.success);
      EXPECT_EQ(a.moves, b.moves);
      EXPECT_EQ(a.merges, b.merges);
      EXPECT_EQ(a.hoists, b.hoists);
      EXPECT_EQ(a.initial_hard, b.initial_hard);
      EXPECT_EQ(a.initial_total, b.initial_total);
      EXPECT_EQ(keys_of(a.final_check), keys_of(b.final_check));
      // Identical placements, not just identical scores.
      EXPECT_EQ(mp::print(fast_p), mp::print(slow_p));
      ++programs;
      if (a.initial_total > 0) ++repaired;
    }
  }
  EXPECT_GE(programs, 200);
  // The corpus must actually exercise the repair loop, not just the check.
  EXPECT_GT(repaired, 20);
}

// ---------------------------------------------------------------------------
// Satisfiability memoization
// ---------------------------------------------------------------------------

TEST(SatCacheDifferential, CachedAndUncachedAgreeWithNonzeroHitRate) {
  const mp::Program p = generated(/*seed=*/23, /*segments=*/18);

  match::MatchOptions uncached;
  uncached.sat.use_cache = false;
  const match::ExtendedCfg plain = match::build_extended_cfg(p, uncached);

  attr::global_sat_cache().clear();
  const match::ExtendedCfg cached = match::build_extended_cfg(p);
  // Identical verdicts: same matched pairs with the same example witnesses.
  ASSERT_EQ(cached.message_edges().size(), plain.message_edges().size());
  for (size_t i = 0; i < plain.message_edges().size(); ++i) {
    const auto& a = cached.message_edges()[i];
    const auto& b = plain.message_edges()[i];
    EXPECT_EQ(a.send, b.send);
    EXPECT_EQ(a.recv, b.recv);
    EXPECT_EQ(a.witness.nprocs, b.witness.nprocs);
    EXPECT_EQ(a.witness.sender, b.witness.sender);
    EXPECT_EQ(a.witness.receiver, b.witness.receiver);
  }

  // Rebuilding the same program hits the cache — every query repeats.
  const auto before = attr::global_sat_cache().stats();
  const match::ExtendedCfg again = match::build_extended_cfg(p);
  const auto after = attr::global_sat_cache().stats();
  EXPECT_EQ(again.message_edges().size(), plain.message_edges().size());
  EXPECT_GT(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
}

}  // namespace
