// Robustness fuzzing: mutated program sources must either parse cleanly
// or raise util::ProgramError — never crash, hang, or corrupt state. The
// analyzer and simulator are additionally exercised on every mutant that
// still parses.
#include <gtest/gtest.h>

#include "match/match.h"
#include "mp/generate.h"
#include "mp/parser.h"
#include "mp/printer.h"
#include "place/place.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace {

using namespace acfc;

std::string mutate(const std::string& source, util::Rng& rng) {
  std::string out = source;
  const int edits = static_cast<int>(rng.uniform_int(1, 4));
  for (int e = 0; e < edits && !out.empty(); ++e) {
    const auto pos = static_cast<size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(out.size()) - 1));
    switch (rng.uniform_int(0, 3)) {
      case 0:  // delete a character
        out.erase(pos, 1);
        break;
      case 1:  // duplicate a character
        out.insert(pos, 1, out[pos]);
        break;
      case 2: {  // replace with a random printable character
        out[pos] = static_cast<char>(rng.uniform_int(32, 126));
        break;
      }
      case 3: {  // swap two characters
        const auto pos2 = static_cast<size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(out.size()) - 1));
        std::swap(out[pos], out[pos2]);
        break;
      }
    }
  }
  return out;
}

TEST(Fuzz, MutatedSourcesNeverCrashTheParser) {
  util::Rng rng(2026);
  int parsed = 0, rejected = 0;
  for (int round = 0; round < 400; ++round) {
    mp::GenerateOptions gopts;
    gopts.seed = static_cast<std::uint64_t>(round % 10) + 1;
    gopts.segments = 5;
    const std::string source = mp::print(mp::generate_program(gopts));
    const std::string mutant = mutate(source, rng);
    try {
      const mp::Program p = mp::parse(mutant);
      ++parsed;
      // A parsed mutant must survive printing and re-parsing.
      EXPECT_NO_THROW({ mp::parse(mp::print(p)); });
    } catch (const util::ProgramError&) {
      ++rejected;  // the only acceptable failure mode
    }
  }
  // Sanity: the mutator produces both outcomes.
  EXPECT_GT(parsed, 10);
  EXPECT_GT(rejected, 10);
}

TEST(Fuzz, ParsedMutantsNeverCrashTheAnalyzer) {
  util::Rng rng(777);
  int analyzed = 0;
  for (int round = 0; round < 150 || analyzed < 20; ++round) {
    if (round > 2000) break;
    mp::GenerateOptions gopts;
    gopts.seed = static_cast<std::uint64_t>(round % 7) + 1;
    gopts.segments = 4;
    gopts.misalign_checkpoints = true;
    const std::string mutant =
        mutate(mp::print(mp::generate_program(gopts)), rng);
    try {
      mp::Program p = mp::parse(mutant);
      // Any structured failure is fine; crashes are not.
      const match::ExtendedCfg ext = match::build_extended_cfg(p);
      (void)place::check_condition1(ext);
      ++analyzed;
    } catch (const util::Error&) {
      // ProgramError (parse/balance) or InternalError guard — acceptable.
    }
  }
  EXPECT_GT(analyzed, 0);
}

TEST(Fuzz, ParsedMutantsNeverCrashTheSimulator) {
  util::Rng rng(4242);
  int simulated = 0;
  for (int round = 0; round < 150; ++round) {
    mp::GenerateOptions gopts;
    gopts.seed = static_cast<std::uint64_t>(round % 7) + 1;
    gopts.segments = 4;
    const std::string mutant =
        mutate(mp::print(mp::generate_program(gopts)), rng);
    try {
      const mp::Program p = mp::parse(mutant);
      sim::SimOptions opts;
      opts.nprocs = 3;
      opts.max_events = 50'000;  // mutants may loop more; keep bounded
      sim::Engine engine(p, opts);
      (void)engine.run();  // completed or not — just must return
      ++simulated;
    } catch (const util::Error&) {
      // Structured rejection (bad destination, unresolvable expr, ...).
    }
  }
  EXPECT_GT(simulated, 0);
}

TEST(Fuzz, GarbageInputsRejectedStructurally) {
  util::Rng rng(99);
  for (int round = 0; round < 200; ++round) {
    std::string garbage;
    const auto len = rng.uniform_int(0, 200);
    for (std::int64_t i = 0; i < len; ++i)
      garbage += static_cast<char>(rng.uniform_int(9, 126));
    try {
      (void)mp::parse(garbage);
    } catch (const util::ProgramError&) {
      // expected for essentially all inputs
    }
  }
  SUCCEED();
}

}  // namespace
