// Robustness fuzzing: mutated program sources must either parse cleanly
// or raise util::ProgramError — never crash, hang, or corrupt state. The
// analyzer and simulator are additionally exercised on every mutant that
// still parses.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "explore/artifact.h"
#include "match/match.h"
#include "mp/generate.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "mp/parser.h"
#include "mp/printer.h"
#include "place/place.h"
#include "sim/engine.h"
#include "store/store.h"
#include "trace/json.h"
#include "util/rng.h"

namespace {

using namespace acfc;

std::string mutate(const std::string& source, util::Rng& rng) {
  std::string out = source;
  const int edits = static_cast<int>(rng.uniform_int(1, 4));
  for (int e = 0; e < edits && !out.empty(); ++e) {
    const auto pos = static_cast<size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(out.size()) - 1));
    switch (rng.uniform_int(0, 3)) {
      case 0:  // delete a character
        out.erase(pos, 1);
        break;
      case 1:  // duplicate a character
        out.insert(pos, 1, out[pos]);
        break;
      case 2: {  // replace with a random printable character
        out[pos] = static_cast<char>(rng.uniform_int(32, 126));
        break;
      }
      case 3: {  // swap two characters
        const auto pos2 = static_cast<size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(out.size()) - 1));
        std::swap(out[pos], out[pos2]);
        break;
      }
    }
  }
  return out;
}

TEST(Fuzz, MutatedSourcesNeverCrashTheParser) {
  util::Rng rng(2026);
  int parsed = 0, rejected = 0;
  for (int round = 0; round < 400; ++round) {
    mp::GenerateOptions gopts;
    gopts.seed = static_cast<std::uint64_t>(round % 10) + 1;
    gopts.segments = 5;
    const std::string source = mp::print(mp::generate_program(gopts));
    const std::string mutant = mutate(source, rng);
    try {
      const mp::Program p = mp::parse(mutant);
      ++parsed;
      // A parsed mutant must survive printing and re-parsing.
      EXPECT_NO_THROW({ mp::parse(mp::print(p)); });
    } catch (const util::ProgramError&) {
      ++rejected;  // the only acceptable failure mode
    }
  }
  // Sanity: the mutator produces both outcomes.
  EXPECT_GT(parsed, 10);
  EXPECT_GT(rejected, 10);
}

TEST(Fuzz, ParsedMutantsNeverCrashTheAnalyzer) {
  util::Rng rng(777);
  int analyzed = 0;
  for (int round = 0; round < 150 || analyzed < 20; ++round) {
    if (round > 2000) break;
    mp::GenerateOptions gopts;
    gopts.seed = static_cast<std::uint64_t>(round % 7) + 1;
    gopts.segments = 4;
    gopts.misalign_checkpoints = true;
    const std::string mutant =
        mutate(mp::print(mp::generate_program(gopts)), rng);
    try {
      mp::Program p = mp::parse(mutant);
      // Any structured failure is fine; crashes are not.
      const match::ExtendedCfg ext = match::build_extended_cfg(p);
      (void)place::check_condition1(ext);
      ++analyzed;
    } catch (const util::Error&) {
      // ProgramError (parse/balance) or InternalError guard — acceptable.
    }
  }
  EXPECT_GT(analyzed, 0);
}

TEST(Fuzz, ParsedMutantsNeverCrashTheSimulator) {
  util::Rng rng(4242);
  int simulated = 0;
  for (int round = 0; round < 150; ++round) {
    mp::GenerateOptions gopts;
    gopts.seed = static_cast<std::uint64_t>(round % 7) + 1;
    gopts.segments = 4;
    const std::string mutant =
        mutate(mp::print(mp::generate_program(gopts)), rng);
    try {
      const mp::Program p = mp::parse(mutant);
      sim::SimOptions opts;
      opts.nprocs = 3;
      opts.max_events = 50'000;  // mutants may loop more; keep bounded
      sim::Engine engine(p, opts);
      (void)engine.run();  // completed or not — just must return
      ++simulated;
    } catch (const util::Error&) {
      // Structured rejection (bad destination, unresolvable expr, ...).
    }
  }
  EXPECT_GT(simulated, 0);
}

// ---------------------------------------------------------------------------
// Token-level mutations: structurally plausible mutants.
// ---------------------------------------------------------------------------

// Splits DSL source into whole tokens (identifiers/numbers, quoted strings,
// punctuation runs). The grammar is whitespace-insensitive, so rejoining
// with single spaces preserves meaning.
std::vector<std::string> split_tokens(const std::string& source) {
  std::vector<std::string> tokens;
  size_t i = 0;
  const auto word = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.';
  };
  while (i < source.size()) {
    const char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
    } else if (c == '"') {  // quoted label: one token, quotes included
      size_t j = i + 1;
      while (j < source.size() && source[j] != '"') ++j;
      tokens.push_back(source.substr(i, j + 1 - i));
      i = j + 1;
    } else if (word(c)) {
      size_t j = i;
      while (j < source.size() && word(source[j])) ++j;
      tokens.push_back(source.substr(i, j - i));
      i = j;
    } else {  // punctuation: multi-char operators stay glued
      size_t j = i + 1;
      static const std::string two[] = {"==", "!=", "<=", ">=", "&&",
                                        "||", ".."};
      for (const auto& op : two)
        if (source.compare(i, 2, op) == 0) j = i + 2;
      tokens.push_back(source.substr(i, j - i));
      i = j;
    }
  }
  return tokens;
}

bool is_number(const std::string& t) {
  if (t.empty()) return false;
  for (const char c : t)
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.')
      return false;
  return true;
}

// Picks the [start, end] token span of a random simple statement (span ends
// at a ";" and starts just after the previous ";", "{", or "}").
bool statement_span(const std::vector<std::string>& tokens, util::Rng& rng,
                    size_t* start, size_t* end) {
  std::vector<size_t> semis;
  for (size_t i = 0; i < tokens.size(); ++i)
    if (tokens[i] == ";") semis.push_back(i);
  if (semis.empty()) return false;
  const size_t e = semis[static_cast<size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(semis.size()) - 1))];
  size_t s = e;
  while (s > 0 && tokens[s - 1] != ";" && tokens[s - 1] != "{" &&
         tokens[s - 1] != "}")
    --s;
  if (s >= e) return false;
  *start = s;
  *end = e;
  return true;
}

// Six whole-token edits: three raw ones (duplicate/drop/swap arbitrary
// tokens — mostly grammar-fatal, exercising the rejection paths) and three
// class-aware ones (swap numbers, duplicate or drop a whole statement —
// mostly parseable, yielding structurally odd programs: retagged or
// redirected messages, doubled checkpoints, orphaned recvs).
std::string mutate_tokens(std::vector<std::string> tokens, util::Rng& rng) {
  const int edits = static_cast<int>(rng.uniform_int(1, 3));
  for (int e = 0; e < edits && tokens.size() > 1; ++e) {
    const auto pick = [&] {
      return static_cast<size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(tokens.size()) - 1));
    };
    switch (rng.uniform_int(0, 5)) {
      case 0:  // duplicate a whole token
        tokens.insert(tokens.begin() + static_cast<std::ptrdiff_t>(pick()),
                      tokens[pick()]);
        break;
      case 1:  // drop a whole token
        tokens.erase(tokens.begin() + static_cast<std::ptrdiff_t>(pick()));
        break;
      case 2:  // swap two whole tokens
        std::swap(tokens[pick()], tokens[pick()]);
        break;
      case 3: {  // swap two number tokens
        std::vector<size_t> nums;
        for (size_t i = 0; i < tokens.size(); ++i)
          if (is_number(tokens[i])) nums.push_back(i);
        if (nums.size() < 2) break;
        const auto pick_num = [&] {
          return nums[static_cast<size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(nums.size()) - 1))];
        };
        std::swap(tokens[pick_num()], tokens[pick_num()]);
        break;
      }
      case 4: {  // duplicate a whole simple statement
        size_t s, t;
        if (!statement_span(tokens, rng, &s, &t)) break;
        const std::vector<std::string> span(
            tokens.begin() + static_cast<std::ptrdiff_t>(s),
            tokens.begin() + static_cast<std::ptrdiff_t>(t) + 1);
        tokens.insert(tokens.begin() + static_cast<std::ptrdiff_t>(t) + 1,
                      span.begin(), span.end());
        break;
      }
      default: {  // drop a whole simple statement
        size_t s, t;
        if (!statement_span(tokens, rng, &s, &t)) break;
        tokens.erase(tokens.begin() + static_cast<std::ptrdiff_t>(s),
                     tokens.begin() + static_cast<std::ptrdiff_t>(t) + 1);
        break;
      }
    }
  }
  std::string out;
  for (const auto& t : tokens) {
    if (!out.empty()) out += ' ';
    out += t;
  }
  return out;
}

TEST(TokenFuzz, SplitterRoundTripsGeneratedPrograms) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    mp::GenerateOptions gopts;
    gopts.seed = seed;
    gopts.segments = 6;
    gopts.misalign_checkpoints = (seed % 2) == 0;
    const std::string source = mp::print(mp::generate_program(gopts));
    util::Rng rng(seed);  // unused by a 0-edit join; just rejoin
    std::string joined;
    for (const auto& t : split_tokens(source)) {
      if (!joined.empty()) joined += ' ';
      joined += t;
    }
    // Token-joined source parses back to the identical program.
    EXPECT_EQ(mp::print(mp::parse(joined)), source) << "seed=" << seed;
  }
}

TEST(TokenFuzzSlow, RepairPlacementSurvivesEveryParseableMutant) {
  // Token-level mutants are far likelier than character mutants to parse —
  // they stress the analyzer/repair pipeline with *structurally* odd
  // programs (dangling recvs, doubled checkpoints, swapped bounds) rather
  // than the lexer. repair_placement must terminate with a report or a
  // structured util::Error on every one, and must be deterministic (two
  // repairs of the same mutant agree — no corrupted global state).
  util::Rng rng(31337);
  int parsed = 0, rejected = 0, repaired_ok = 0;
  for (int round = 0; round < 300; ++round) {
    mp::GenerateOptions gopts;
    gopts.seed = static_cast<std::uint64_t>(round % 12) + 1;
    gopts.segments = 5;
    gopts.misalign_checkpoints = (round % 2) == 0;
    const std::string source = mp::print(mp::generate_program(gopts));
    const std::string mutant = mutate_tokens(split_tokens(source), rng);
    try {
      (void)mp::parse(mutant);
    } catch (const util::ProgramError&) {
      ++rejected;
      continue;
    }
    ++parsed;
    try {
      mp::Program p = mp::parse(mutant);
      mp::Program copy = mp::parse(mutant);
      const auto a = place::repair_placement(p);
      const auto b = place::repair_placement(copy);
      EXPECT_EQ(a.success, b.success) << "round=" << round;
      EXPECT_EQ(a.moves, b.moves) << "round=" << round;
      EXPECT_EQ(mp::print(p), mp::print(copy)) << "round=" << round;
      if (a.success) ++repaired_ok;
    } catch (const util::Error&) {
      // Structured rejection (unmatched recv, unsat guard, ...) is fine.
    }
  }
  // The mutator must produce a healthy mix, and repair must actually
  // succeed on a sizable share of the parseable mutants.
  EXPECT_GT(parsed, 50);
  EXPECT_GT(rejected, 10);
  EXPECT_GT(repaired_ok, 25);
}

// ---------------------------------------------------------------------------
// Manifest fuzzing: the on-disk catalog parser must reject, never crash.
// ---------------------------------------------------------------------------

// A realistic encoded manifest: several records, incremental mode.
std::string sample_manifest_bytes(int writes) {
  store::StableStore s(store::StorageModel{},
                       store::CheckpointMode::kIncremental, 2);
  for (int i = 0; i < writes; ++i)
    s.write_checkpoint(1, 1'000'000 + i * 10'000, static_cast<double>(i));
  return store::encode_manifest(s.manifest_of(1));
}

TEST(ManifestFuzz, MutatedManifestsParseOrRejectCleanly) {
  // Byte-level mutants of a valid encoding: parse_manifest must return
  // nullopt or a manifest that round-trips — never throw or crash. The
  // trailing checksum makes essentially every real mutation detectable, so
  // almost all mutants must be rejected.
  const std::string clean = sample_manifest_bytes(6);
  ASSERT_TRUE(store::parse_manifest(clean).has_value());

  util::Rng rng(20260806);
  int accepted = 0, rejected = 0;
  for (int round = 0; round < 500; ++round) {
    const std::string mutant = mutate(clean, rng);
    const auto parsed = store::parse_manifest(mutant);
    if (!parsed.has_value()) {
      ++rejected;
      continue;
    }
    ++accepted;
    // Anything accepted must re-encode to a parseable, equal manifest.
    const std::string reencoded = store::encode_manifest(*parsed);
    const auto again = store::parse_manifest(reencoded);
    ASSERT_TRUE(again.has_value()) << "round=" << round;
    EXPECT_EQ(again->proc, parsed->proc);
    EXPECT_EQ(again->version, parsed->version);
    EXPECT_EQ(again->entries.size(), parsed->entries.size());
  }
  // The checksum gate: mutations land somewhere in the covered bytes (or
  // in the checksum itself) virtually always, so acceptance is the rare
  // case (identity mutants: swap-with-self, duplicate-then-delete).
  EXPECT_GT(rejected, 450);
  EXPECT_LT(accepted, 50);
}

TEST(ManifestFuzz, TruncatedPrefixesAllRejected) {
  const std::string clean = sample_manifest_bytes(4);
  for (size_t len = 0; len < clean.size(); ++len) {
    EXPECT_FALSE(
        store::parse_manifest(std::string_view(clean.data(), len))
            .has_value())
        << "prefix of length " << len << " accepted";
  }
}

TEST(ManifestFuzz, TrailingGarbageRejected) {
  const std::string clean = sample_manifest_bytes(3);
  util::Rng rng(55);
  for (int round = 0; round < 50; ++round) {
    std::string padded = clean;
    const auto extra = rng.uniform_int(1, 32);
    for (std::int64_t i = 0; i < extra; ++i)
      padded += static_cast<char>(rng.uniform_int(0, 255));
    EXPECT_FALSE(store::parse_manifest(padded).has_value())
        << "round=" << round;
  }
}

TEST(ManifestFuzz, RandomGarbageNeverCrashes) {
  util::Rng rng(314159);
  int accepted = 0;
  for (int round = 0; round < 500; ++round) {
    std::string garbage;
    const auto len = rng.uniform_int(0, 300);
    for (std::int64_t i = 0; i < len; ++i)
      garbage += static_cast<char>(rng.uniform_int(0, 255));
    if (store::parse_manifest(garbage).has_value()) ++accepted;
  }
  EXPECT_EQ(accepted, 0);  // random bytes never pass magic + checksum
}

TEST(Fuzz, GarbageInputsRejectedStructurally) {
  util::Rng rng(99);
  for (int round = 0; round < 200; ++round) {
    std::string garbage;
    const auto len = rng.uniform_int(0, 200);
    for (std::int64_t i = 0; i < len; ++i)
      garbage += static_cast<char>(rng.uniform_int(9, 126));
    try {
      (void)mp::parse(garbage);
    } catch (const util::ProgramError&) {
      // expected for essentially all inputs
    }
  }
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Observability JSON-lines exporter — obs::snapshot_from_jsonl /
// trace::parse_json over mutated and truncated exports
// ---------------------------------------------------------------------------

std::string sample_obs_jsonl() {
  obs::Registry registry;
  registry.counter("engine.events_processed", {"events", "engine"}).inc(321);
  registry.counter("transport.retransmits", {"messages", "transport"})
      .inc(7);
  registry.gauge("persist.queue_depth", {"jobs", "persist"}).set(3);
  obs::Histogram& h =
      registry.histogram("engine.lost_work_us", {"us", "engine"});
  h.record(1500);
  h.record(42);
  registry.emit_span("checkpoint", 2, 1.0, 1.5);
  registry.emit_span("rollback", 0, 3.0, 4.25, 1);
  return obs::to_jsonl(registry.snapshot());
}

TEST(ObsJsonlFuzz, CleanExportRoundTripsThroughTheParser) {
  const std::string clean = sample_obs_jsonl();
  const auto parsed = obs::snapshot_from_jsonl(clean);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(obs::to_jsonl(*parsed), clean);  // byte-level fixed point
}

TEST(ObsJsonlFuzz, MutatedExportsParseOrRejectButNeverThrow) {
#if !ACFC_OBS
  GTEST_SKIP() << "observability compiled out (ACFC_OBS=0)";
#endif
  const std::string clean = sample_obs_jsonl();
  util::Rng rng(20260808);
  int accepted = 0, rejected = 0;
  for (int round = 0; round < 800; ++round) {
    const std::string mutant = mutate(clean, rng);
    // noexcept contract: snapshot_from_jsonl (and the trace::parse_json
    // underneath) must never throw, whatever the bytes.
    const auto parsed = obs::snapshot_from_jsonl(mutant);
    if (!parsed.has_value()) {
      ++rejected;
      continue;
    }
    ++accepted;
    // Whatever survives mutation must re-export without throwing; the
    // re-export must itself parse (the format is closed under round
    // trips, even for mutants that changed values or dropped lines).
    const std::string reencoded = obs::to_jsonl(*parsed);
    const auto again = obs::snapshot_from_jsonl(reencoded);
    ASSERT_TRUE(again.has_value()) << "round=" << round;
    EXPECT_EQ(again->metrics, parsed->metrics) << "round=" << round;
  }
  // Character edits usually land inside JSON syntax or a keyword, so both
  // outcomes must actually occur — rejection dominating.
  EXPECT_GT(rejected, 0);
  EXPECT_GT(accepted, 0);
}

TEST(ObsJsonlFuzz, EveryTruncationParsesOrRejectsCleanly) {
  const std::string clean = sample_obs_jsonl();
  for (size_t len = 0; len <= clean.size(); ++len) {
    const auto parsed =
        obs::snapshot_from_jsonl(std::string_view(clean.data(), len));
    if (!parsed.has_value()) continue;  // mid-line cut: rejected, fine
    // Cuts on line boundaries parse as a valid prefix of the export.
    EXPECT_LE(parsed->metrics.size(), 4u) << "len=" << len;
    EXPECT_LE(parsed->spans.size(), 2u) << "len=" << len;
  }
}

TEST(ObsJsonlFuzz, RawGarbageIntoTraceJsonParserNeverThrows) {
  util::Rng rng(60486048);
  int accepted = 0;
  for (int round = 0; round < 500; ++round) {
    std::string garbage;
    const auto len = rng.uniform_int(0, 240);
    for (std::int64_t i = 0; i < len; ++i)
      garbage += static_cast<char>(rng.uniform_int(0, 255));
    if (trace::parse_json(garbage).has_value()) ++accepted;
    (void)obs::snapshot_from_jsonl(garbage);
  }
  // Random bytes essentially never form valid JSON; the point is the
  // noexcept path, the count just documents the expectation.
  EXPECT_LT(accepted, 10);
}

// ---------------------------------------------------------------------------
// ACFX repro-artifact parser (explore/artifact.h): parse-or-reject, never
// throws. Artifacts cross machine boundaries (checked into bug reports,
// passed to `acfc explore --repro`), so the parser sees arbitrary bytes.

std::string sample_artifact_text() {
  explore::Violation v;
  v.property = "cic-index";
  v.plan = {0, 0, 1, 2, 0, 1};
  v.digest = 0xdeadbeefcafef00dULL;
  explore::Scenario sc;
  sc.driver = "cic-broken";
  sc.proto.cic_stagger = 0.5;
  explore::ExploreOptions opts;
  opts.perturb.delay_steps = 3;
  opts.perturb.delay_quantum = 2.0;
  // Gray-failure dimensions at non-default values, so every one of their
  // keys is present in the sample and mutations land on their parse paths.
  opts.perturb.partition_points = true;
  opts.perturb.partition_window = 0.75;
  opts.perturb.stall_points = true;
  opts.perturb.stall_window = 1.5;
  opts.max_partitions = 2;
  opts.max_stalls = 3;
  return explore::to_text(explore::make_artifact(sc, opts, v));
}

TEST(AcfxFuzz, MutatedArtifactsParseOrRejectCleanly) {
  const std::string clean = sample_artifact_text();
  ASSERT_TRUE(explore::parse_artifact(clean).has_value());

  util::Rng rng(20260808);
  int accepted = 0;
  for (int round = 0; round < 2000; ++round) {
    const std::string mutant = mutate(clean, rng);
    const auto parsed = explore::parse_artifact(mutant);
    if (!parsed.has_value()) continue;
    ++accepted;
    // Anything accepted must re-serialize canonically and re-parse equal.
    const std::string reencoded = explore::to_text(*parsed);
    const auto again = explore::parse_artifact(reencoded);
    ASSERT_TRUE(again.has_value()) << "round=" << round;
    EXPECT_EQ(again->plan, parsed->plan);
    EXPECT_EQ(again->digest, parsed->digest);
    EXPECT_EQ(again->scenario.workload, parsed->scenario.workload);
  }
  // No checksum, so benign mutants (digit tweaks inside a value) can
  // survive — but names, keys, and structure gate most of them.
  EXPECT_LT(accepted, 600);
}

TEST(AcfxFuzz, EveryTruncationParsesOrRejectsCleanly) {
  const std::string clean = sample_artifact_text();
  // Every prefix short of the "end" line lacks the terminator (or cuts a
  // line) and must be rejected. The one legitimate exception is dropping
  // only the final newline — "…\nend" is still a complete artifact.
  for (std::size_t len = 0; len + 1 < clean.size(); ++len) {
    EXPECT_FALSE(
        explore::parse_artifact(std::string_view(clean.data(), len))
            .has_value())
        << "prefix of length " << len << " accepted";
  }
  EXPECT_TRUE(explore::parse_artifact(clean.substr(0, clean.size() - 1))
                  .has_value());
  EXPECT_TRUE(explore::parse_artifact(clean).has_value());
}

TEST(AcfxFuzz, TrailingGarbageRejected) {
  const std::string clean = sample_artifact_text();
  util::Rng rng(808);
  for (int round = 0; round < 50; ++round) {
    std::string padded = clean;
    const auto extra = rng.uniform_int(1, 32);
    for (std::int64_t i = 0; i < extra; ++i)
      padded += static_cast<char>(rng.uniform_int(0, 255));
    EXPECT_FALSE(explore::parse_artifact(padded).has_value())
        << "round=" << round;
  }
}

TEST(AcfxFuzz, RandomGarbageNeverAccepted) {
  util::Rng rng(424242);
  int accepted = 0;
  for (int round = 0; round < 1000; ++round) {
    std::string garbage;
    const auto len = rng.uniform_int(0, 300);
    for (std::int64_t i = 0; i < len; ++i)
      garbage += static_cast<char>(rng.uniform_int(0, 255));
    if (explore::parse_artifact(garbage).has_value()) ++accepted;
  }
  EXPECT_EQ(accepted, 0);  // the ACFX1 magic line gates random bytes
}

}  // namespace
