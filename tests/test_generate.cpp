// Unit tests for the random program generator: determinism, structural
// bounds, checkpoint balance knobs, and printability.
#include <gtest/gtest.h>

#include "mp/generate.h"
#include "mp/parser.h"
#include "mp/printer.h"

namespace {

using namespace acfc::mp;

TEST(Generate, Deterministic) {
  GenerateOptions opts;
  opts.seed = 42;
  const Program a = generate_program(opts);
  const Program b = generate_program(opts);
  EXPECT_EQ(print(a), print(b));
}

TEST(Generate, SeedsDiffer) {
  GenerateOptions a_opts, b_opts;
  a_opts.seed = 1;
  b_opts.seed = 2;
  EXPECT_NE(print(generate_program(a_opts)), print(generate_program(b_opts)));
}

TEST(Generate, ProducesRequestedSegments) {
  GenerateOptions opts;
  opts.seed = 7;
  opts.segments = 10;
  opts.loop_probability = 0.0;
  const Program p = generate_program(opts);
  // Without loops, each segment contributes at least one top-level stmt.
  EXPECT_GE(p.body.size(), 10u);
}

TEST(Generate, NoLoopsWhenDepthZero) {
  GenerateOptions opts;
  opts.seed = 3;
  opts.max_loop_depth = 0;
  opts.segments = 12;
  const Program p = generate_program(opts);
  bool has_generated_loop = false;
  for_each_stmt(p, [&](const Stmt& s) {
    if (s.kind() == StmtKind::kLoop) {
      // Master-gather emits a `for w in 1..nprocs` worker loop, which is a
      // communication pattern, not a repetition loop; those use var "w".
      if (static_cast<const LoopStmt&>(s).var != "w")
        has_generated_loop = true;
    }
  });
  EXPECT_FALSE(has_generated_loop);
}

TEST(Generate, NoCollectivesWhenDisabled) {
  GenerateOptions opts;
  opts.seed = 5;
  opts.segments = 30;
  opts.allow_collectives = false;
  const Program p = generate_program(opts);
  bool any = false;
  for_each_stmt(p, [&any](const Stmt& s) {
    if (s.kind() == StmtKind::kBarrier || s.kind() == StmtKind::kBcast)
      any = true;
  });
  EXPECT_FALSE(any);
}

TEST(Generate, MisalignKnobProducesBranchCheckpoints) {
  // With enough segments and misalignment on, some checkpoint ends up
  // inside an if-branch.
  GenerateOptions opts;
  opts.seed = 11;
  opts.segments = 40;
  opts.misalign_checkpoints = true;
  const Program p = generate_program(opts);
  bool inside_branch = false;
  std::function<void(const Block&, bool)> walk = [&](const Block& b,
                                                     bool in_branch) {
    for (const auto& s : b.stmts) {
      if (s->kind() == StmtKind::kCheckpoint && in_branch)
        inside_branch = true;
      if (const auto* iff = dynamic_cast<const IfStmt*>(s.get())) {
        walk(iff->then_body, true);
        walk(iff->else_body, true);
      } else if (const auto* loop = dynamic_cast<const LoopStmt*>(s.get())) {
        walk(loop->body, in_branch);
      }
    }
  };
  walk(p.body, false);
  EXPECT_TRUE(inside_branch);
}

TEST(Generate, BranchCheckpointsAreBalanced) {
  // Misaligned checkpoints are placed in both arms so every path carries
  // the same number of checkpoints (the Phase-I precondition).
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    GenerateOptions opts;
    opts.seed = seed;
    opts.segments = 25;
    opts.misalign_checkpoints = true;
    const Program p = generate_program(opts);
    std::function<int(const Block&)> count_balanced =
        [&](const Block& b) -> int {
      int total = 0;
      for (const auto& s : b.stmts) {
        if (s->kind() == StmtKind::kCheckpoint) ++total;
        if (const auto* iff = dynamic_cast<const IfStmt*>(s.get())) {
          const int t = count_balanced(iff->then_body);
          const int e = count_balanced(iff->else_body);
          EXPECT_EQ(t, e) << "unbalanced arms at seed " << seed;
          total += t;
        } else if (const auto* loop =
                       dynamic_cast<const LoopStmt*>(s.get())) {
          total += count_balanced(loop->body);
        }
      }
      return total;
    };
    count_balanced(p.body);
  }
}

TEST(Generate, OutputParsesBack) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    GenerateOptions opts;
    opts.seed = seed;
    opts.segments = 15;
    const Program p = generate_program(opts);
    const Program q = parse(print(p));
    EXPECT_EQ(q.stmt_count(), p.stmt_count()) << "seed " << seed;
  }
}

}  // namespace
