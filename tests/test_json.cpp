// Unit tests for trace JSON export/import: lossless round-trips on real
// simulated traces (including failure runs), determinism of the writer,
// error handling of the reader, and analysis equivalence on loaded
// traces.
#include <gtest/gtest.h>

#include <cstdio>

#include "mp/parser.h"
#include "sim/engine.h"
#include "trace/analysis.h"
#include "trace/json.h"
#include "util/error.h"

namespace {

using namespace acfc;

trace::Trace make_trace(bool with_failure) {
  const mp::Program p = mp::parse(R"(
    program j {
      loop 3 {
        compute 1.5;
        checkpoint;
        send to (rank + 1) % nprocs tag 1 bytes 64;
        recv from (rank - 1 + nprocs) % nprocs tag 1;
      }
    })");
  sim::SimOptions opts;
  opts.nprocs = 3;
  if (with_failure) opts.failures = {{1, 2.0}};
  return sim::Engine(p, opts).run().trace;
}

void expect_equal(const trace::Trace& a, const trace::Trace& b) {
  EXPECT_EQ(a.nprocs, b.nprocs);
  EXPECT_DOUBLE_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.final_digest, b.final_digest);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind) << i;
    EXPECT_EQ(a.events[i].proc, b.events[i].proc) << i;
    EXPECT_DOUBLE_EQ(a.events[i].time, b.events[i].time) << i;
    EXPECT_TRUE(a.events[i].vc == b.events[i].vc) << i;
    EXPECT_EQ(a.events[i].msg_id, b.events[i].msg_id) << i;
  }
  ASSERT_EQ(a.messages.size(), b.messages.size());
  for (size_t i = 0; i < a.messages.size(); ++i) {
    EXPECT_EQ(a.messages[i].seq, b.messages[i].seq) << i;
    EXPECT_DOUBLE_EQ(a.messages[i].recv_time, b.messages[i].recv_time) << i;
    EXPECT_TRUE(a.messages[i].send_vc == b.messages[i].send_vc) << i;
    EXPECT_EQ(a.messages[i].consumed, b.messages[i].consumed) << i;
    EXPECT_EQ(a.messages[i].replayed, b.messages[i].replayed) << i;
  }
  ASSERT_EQ(a.checkpoints.size(), b.checkpoints.size());
  for (size_t i = 0; i < a.checkpoints.size(); ++i) {
    EXPECT_EQ(a.checkpoints[i].static_index, b.checkpoints[i].static_index);
    EXPECT_EQ(a.checkpoints[i].instance, b.checkpoints[i].instance);
    EXPECT_DOUBLE_EQ(a.checkpoints[i].t_commit, b.checkpoints[i].t_commit);
    EXPECT_TRUE(a.checkpoints[i].vc == b.checkpoints[i].vc);
  }
}

TEST(TraceJson, RoundTripFailureFree) {
  const auto t = make_trace(false);
  const auto back = trace::from_json(trace::to_json(t));
  expect_equal(t, back);
}

TEST(TraceJson, RoundTripWithFailure) {
  const auto t = make_trace(true);
  const auto back = trace::from_json(trace::to_json(t));
  expect_equal(t, back);
}

TEST(TraceJson, WriterIsDeterministic) {
  const auto t = make_trace(false);
  EXPECT_EQ(trace::to_json(t), trace::to_json(t));
}

TEST(TraceJson, SecondRoundTripIsFixedPoint) {
  const auto t = make_trace(false);
  const std::string once = trace::to_json(t);
  const std::string twice = trace::to_json(trace::from_json(once));
  EXPECT_EQ(once, twice);
}

TEST(TraceJson, AnalysesAgreeOnLoadedTrace) {
  const auto t = make_trace(false);
  const auto back = trace::from_json(trace::to_json(t));
  const auto cuts_a = trace::all_straight_cuts(t);
  const auto cuts_b = trace::all_straight_cuts(back);
  ASSERT_EQ(cuts_a.size(), cuts_b.size());
  for (size_t i = 0; i < cuts_a.size(); ++i) {
    EXPECT_EQ(trace::analyze_cut(t, cuts_a[i]).consistent,
              trace::analyze_cut(back, cuts_b[i]).consistent);
  }
  const auto line_a = trace::max_recovery_line(t, t.end_time);
  const auto line_b = trace::max_recovery_line(back, back.end_time);
  EXPECT_EQ(line_a.cut.member, line_b.cut.member);
}

TEST(TraceJson, SaveAndLoadFile) {
  const auto t = make_trace(false);
  const std::string path = ::testing::TempDir() + "acfc_trace_test.json";
  trace::save_json(t, path);
  const auto back = trace::load_json(path);
  expect_equal(t, back);
  std::remove(path.c_str());
}

TEST(TraceJson, AcceptsWhitespaceAndEscapes) {
  const auto t = trace::from_json(R"(
    {
      "nprocs": 2, "end_time": 1.5, "completed": true,
      "final_digest": [1, 2],
      "events": [ { "kind": "send", "proc": 0, "time": 0.25,
                    "vc": [1, 0], "stmt_uid": 3, "msg_id": 0, "peer": 1,
                    "tag": 7, "ckpt_id": -1, "ckpt_instance": -1,
                    "forced": false } ],
      "messages": [], "checkpoints": []
    })");
  EXPECT_EQ(t.nprocs, 2);
  ASSERT_EQ(t.events.size(), 1u);
  EXPECT_EQ(t.events[0].kind, trace::EventKind::kSend);
  EXPECT_EQ(t.events[0].vc[0], 1u);
}

TEST(TraceJson, RejectsMalformedInput) {
  EXPECT_THROW(trace::from_json("not json"), util::ProgramError);
  EXPECT_THROW(trace::from_json("{\"nprocs\": 2}"), util::ProgramError);
  EXPECT_THROW(trace::from_json("{}"), util::ProgramError);
  EXPECT_THROW(trace::from_json("[1,2,3]"), util::ProgramError);
  EXPECT_THROW(
      trace::from_json(
          R"({"nprocs":0,"end_time":0,"completed":true,
              "final_digest":[],"events":[],"messages":[],
              "checkpoints":[]})"),
      util::ProgramError);
}

TEST(TraceJson, RejectsUnknownEventKind) {
  EXPECT_THROW(trace::from_json(R"(
    {"nprocs":1,"end_time":0,"completed":true,"final_digest":[],
     "events":[{"kind":"teleport","proc":0,"time":0,"vc":[0],
                "stmt_uid":-1,"msg_id":-1,"peer":-1,"tag":0,
                "ckpt_id":-1,"ckpt_instance":-1,"forced":false}],
     "messages":[],"checkpoints":[]})"),
               util::ProgramError);
}

TEST(TraceJson, RejectsWrongClockSize) {
  EXPECT_THROW(trace::from_json(R"(
    {"nprocs":2,"end_time":0,"completed":true,"final_digest":[],
     "events":[{"kind":"send","proc":0,"time":0,"vc":[0],
                "stmt_uid":-1,"msg_id":-1,"peer":-1,"tag":0,
                "ckpt_id":-1,"ckpt_instance":-1,"forced":false}],
     "messages":[],"checkpoints":[]})"),
               util::ProgramError);
}

TEST(TraceJson, RejectsTrailingGarbage) {
  const auto t = make_trace(false);
  EXPECT_THROW(trace::from_json(trace::to_json(t) + "extra"),
               util::ProgramError);
}

}  // namespace
