// Tests for the Koo–Toueg minimal two-phase protocol: dependency-driven
// participant selection (only the causal closure checkpoints), message
// accounting (3·participants−3 ≤ 3(n−1)), snapshot consistency, and the
// sparse-communication advantage over SaS.
#include <gtest/gtest.h>

#include "mp/parser.h"
#include "proto/koo_toueg.h"
#include "proto/protocols.h"
#include "trace/analysis.h"

namespace {

using namespace acfc;
using proto::Protocol;
using proto::ProtocolOptions;
using proto::run_protocol;

sim::SimOptions sim_opts(int nprocs) {
  sim::SimOptions opts;
  opts.nprocs = nprocs;
  return opts;
}

ProtocolOptions proto_opts(double interval) {
  ProtocolOptions opts;
  opts.interval = interval;
  return opts;
}

// Ring exchange: everyone is in everyone's dependency closure.
mp::Program dense_workload(int iters) {
  return mp::parse(
      "program dense {\n"
      "  loop " + std::to_string(iters) + " {\n"
      "    compute 10.0;\n"
      "    send to (rank + 1) % nprocs tag 1;\n"
      "    recv from (rank - 1 + nprocs) % nprocs tag 1;\n"
      "  }\n"
      "}\n");
}

// Disjoint pairs: {0,1} exchange and {2,3} exchange; rank 0's closure is
// only {0, 1}.
constexpr const char* kSparse = R"(
  program sparse {
    loop 6 {
      compute 10.0;
      if (rank % 2 == 0) {
        if (rank + 1 < nprocs) { send to rank + 1 tag 1;
                                 recv from rank + 1 tag 1; }
      } else {
        send to rank - 1 tag 1;
        recv from rank - 1 tag 1;
      }
    }
  })";

TEST(KooToueg, CompletesAndCountsRounds) {
  const auto r = run_protocol(dense_workload(6), Protocol::kKooToueg,
                              sim_opts(4), proto_opts(25.0));
  EXPECT_TRUE(r.sim.trace.completed);
  EXPECT_GE(r.rounds_completed, 1);
}

TEST(KooToueg, DenseWorkloadCheckpointsEveryone) {
  const auto r = run_protocol(dense_workload(6), Protocol::kKooToueg,
                              sim_opts(4), proto_opts(25.0));
  ASSERT_GE(r.rounds_completed, 1);
  // Ring: the initiator's transitive dependency closure is all 4 procs.
  EXPECT_EQ(r.sim.stats.forced_checkpoints, r.rounds_completed * 4);
  // 3·(participants−1) control messages per round.
  EXPECT_EQ(r.sim.stats.control_messages, r.rounds_completed * 3 * 3);
}

TEST(KooToueg, SparseWorkloadCheckpointsOnlyClosure) {
  const auto r = run_protocol(mp::parse(kSparse), Protocol::kKooToueg,
                              sim_opts(6), proto_opts(25.0));
  ASSERT_GE(r.rounds_completed, 1);
  // Initiator 0 exchanges only with 1: two participants per round.
  EXPECT_EQ(r.sim.stats.forced_checkpoints, r.rounds_completed * 2);
  // ...and only 3 control messages per round (request+ack+commit).
  EXPECT_EQ(r.sim.stats.control_messages, r.rounds_completed * 3);
}

TEST(KooToueg, SparseBeatsSaSOnMessages) {
  const auto kt = run_protocol(mp::parse(kSparse), Protocol::kKooToueg,
                               sim_opts(6), proto_opts(25.0));
  const auto sas = run_protocol(mp::parse(kSparse), Protocol::kSyncAndStop,
                                sim_opts(6), proto_opts(25.0));
  ASSERT_GE(kt.rounds_completed, 1);
  ASSERT_GE(sas.rounds_completed, 1);
  const double kt_per_round =
      static_cast<double>(kt.sim.stats.control_messages) /
      kt.rounds_completed;
  const double sas_per_round =
      static_cast<double>(sas.sim.stats.control_messages) /
      sas.rounds_completed;
  EXPECT_LT(kt_per_round, sas_per_round);
}

TEST(KooToueg, WithinWorstCaseBound) {
  const auto r = run_protocol(dense_workload(8), Protocol::kKooToueg,
                              sim_opts(5), proto_opts(20.0));
  ASSERT_GE(r.rounds_completed, 1);
  EXPECT_LE(r.sim.stats.control_messages,
            r.rounds_completed *
                proto::expected_control_messages(Protocol::kKooToueg, 5));
}

TEST(KooToueg, RoundCheckpointsFormRecoveryLine) {
  // Participants' round-k checkpoints together with non-participants'
  // prior checkpoints (or initial states) must be a consistent cut:
  // evaluate the maximal recovery line right after each round and confirm
  // zero demotion below the latest checkpoints.
  const auto r = run_protocol(dense_workload(8), Protocol::kKooToueg,
                              sim_opts(4), proto_opts(20.0));
  ASSERT_GE(r.rounds_completed, 2);
  const auto& trace = r.sim.trace;
  // Mid-cascade the tentative checkpoints are NOT yet a recovery line
  // (that is why the protocol has a commit phase); sample after each
  // round's burst completes. Bursts are separated by ≥ interval.
  std::vector<double> times;
  for (const auto& c : trace.checkpoints) times.push_back(c.t_end);
  std::sort(times.begin(), times.end());
  std::vector<double> round_ends;
  for (size_t i = 0; i < times.size(); ++i)
    if (i + 1 == times.size() || times[i + 1] - times[i] > 5.0)
      round_ends.push_back(times[i]);
  ASSERT_GE(round_ends.size(), 2u);
  for (const double t : round_ends) {
    const auto line = trace::max_recovery_line(trace, t + 1e-6);
    EXPECT_TRUE(line.consistent);
    for (const int rb : line.rollbacks) EXPECT_EQ(rb, 0) << "t=" << t;
  }
}

TEST(KooToueg, PausesAreBounded) {
  const auto r = run_protocol(dense_workload(6), Protocol::kKooToueg,
                              sim_opts(4), proto_opts(25.0));
  // The blocking window is the two-phase exchange, far below SaS's
  // full-drain stop.
  const auto sas = run_protocol(dense_workload(6), Protocol::kSyncAndStop,
                                sim_opts(4), proto_opts(25.0));
  EXPECT_GT(r.sim.stats.paused_time, 0.0);
  EXPECT_LE(r.sim.stats.paused_time, sas.sim.stats.paused_time + 1e-9);
}

}  // namespace
