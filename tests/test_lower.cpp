// Unit tests for collective lowering: structure of the lowered forms and
// absence of collectives afterwards.
#include <gtest/gtest.h>

#include "mp/lower.h"
#include "mp/parser.h"
#include "mp/printer.h"

namespace {

using namespace acfc::mp;

TEST(Lower, DetectsCollectives) {
  EXPECT_TRUE(has_collectives(parse("program t { barrier; }")));
  EXPECT_TRUE(has_collectives(parse("program t { bcast root 0; }")));
  EXPECT_FALSE(has_collectives(parse("program t { compute 1.0; }")));
}

TEST(Lower, RemovesAllCollectives) {
  const Program p = parse(
      "program t { barrier; loop 2 { bcast root 0; } "
      "if (rank == 0) { barrier tag 7; } }");
  const Program q = lower_collectives(p);
  EXPECT_FALSE(has_collectives(q));
}

TEST(Lower, BcastShape) {
  const Program q =
      lower_collectives(parse("program t { bcast root 0 tag 2 bytes 32; }"));
  // Root arm: a loop over all ranks sending; non-root arm: a single recv.
  ASSERT_EQ(q.body.size(), 1u);
  const auto& iff = static_cast<const IfStmt&>(*q.body.stmts[0]);
  ASSERT_EQ(iff.then_body.size(), 1u);
  EXPECT_EQ(iff.then_body.stmts[0]->kind(), StmtKind::kLoop);
  ASSERT_EQ(iff.else_body.size(), 1u);
  const auto& recv = static_cast<const RecvStmt&>(*iff.else_body.stmts[0]);
  EXPECT_EQ(recv.tag, 1'000'002);  // reserved tag space preserves app tags
  int sends = 0;
  for_each_stmt(q, [&sends](const Stmt& s) {
    if (s.kind() == StmtKind::kSend) {
      ++sends;
      EXPECT_EQ(static_cast<const SendStmt&>(s).bytes, 32);
    }
  });
  EXPECT_EQ(sends, 1);  // one send statement inside the loop
}

TEST(Lower, BarrierShape) {
  const Program q = lower_collectives(parse("program t { barrier; }"));
  const auto& iff = static_cast<const IfStmt&>(*q.body.stmts[0]);
  // Rank-0 arm: gather loop + release loop.
  ASSERT_EQ(iff.then_body.size(), 2u);
  EXPECT_EQ(iff.then_body.stmts[0]->kind(), StmtKind::kLoop);
  EXPECT_EQ(iff.then_body.stmts[1]->kind(), StmtKind::kLoop);
  // Other ranks: send-then-recv with rank 0.
  ASSERT_EQ(iff.else_body.size(), 2u);
  EXPECT_EQ(iff.else_body.stmts[0]->kind(), StmtKind::kSend);
  EXPECT_EQ(iff.else_body.stmts[1]->kind(), StmtKind::kRecv);
}

TEST(Lower, PreservesNonCollectiveStatements) {
  const Program p = parse(
      "program t { compute 1.0; checkpoint; barrier; send to 0 tag 9; }");
  const Program q = lower_collectives(p);
  EXPECT_EQ(checkpoint_count(q), 1);
  int computes = 0, sends_tag9 = 0;
  for_each_stmt(q, [&](const Stmt& s) {
    if (s.kind() == StmtKind::kCompute) ++computes;
    if (s.kind() == StmtKind::kSend &&
        static_cast<const SendStmt&>(s).tag == 9)
      ++sends_tag9;
  });
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(sends_tag9, 1);
}

TEST(Lower, NestedCollectivesInsideLoops) {
  const Program q = lower_collectives(
      parse("program t { loop 3 { barrier; compute 1.0; } }"));
  EXPECT_FALSE(has_collectives(q));
  // The lowered barrier lives inside the original loop.
  const auto& loop = static_cast<const LoopStmt&>(*q.body.stmts[0]);
  ASSERT_EQ(loop.body.size(), 2u);
  EXPECT_EQ(loop.body.stmts[0]->kind(), StmtKind::kIf);
  EXPECT_EQ(loop.body.stmts[1]->kind(), StmtKind::kCompute);
}

TEST(Lower, ResultIsRenumbered) {
  const Program q = lower_collectives(parse("program t { barrier; }"));
  std::vector<int> uids;
  for_each_stmt(q, [&uids](const Stmt& s) { uids.push_back(s.uid()); });
  for (std::size_t i = 0; i < uids.size(); ++i)
    EXPECT_EQ(uids[i], static_cast<int>(i));
}

TEST(Lower, LoweredProgramPrintsAndReparses) {
  const Program q = lower_collectives(
      parse("program t { barrier; bcast root nprocs - 1; }"));
  const Program r = parse(print(q));
  EXPECT_EQ(r.stmt_count(), q.stmt_count());
}

TEST(Lower, CustomTagBase) {
  LowerOptions opts;
  opts.collective_tag_base = 500;
  const Program q =
      lower_collectives(parse("program t { barrier tag 3; }"), opts);
  bool saw = false;
  for_each_stmt(q, [&saw](const Stmt& s) {
    if (s.kind() == StmtKind::kSend)
      saw |= static_cast<const SendStmt&>(s).tag == 503;
  });
  EXPECT_TRUE(saw);
}

}  // namespace
