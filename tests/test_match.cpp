// Unit tests for Phase II (Algorithm 3.1): extended-CFG construction,
// message-edge matching on the paper's figures, matching policies, and
// path classification.
#include <gtest/gtest.h>

#include "match/match.h"
#include "mp/lower.h"
#include "mp/parser.h"

namespace {

using namespace acfc;
using match::build_extended_cfg;
using match::ExtendedCfg;
using match::MatchOptions;
using match::MatchPolicy;

constexpr const char* kJacobi2 = R"(
  program jacobi2 {
    for it in 0 .. 10 {
      compute 5.0;
      if (rank % 2 == 0) {
        checkpoint "even";
        send to rank + 1 tag 1;
        recv from rank + 1 tag 1;
      } else {
        send to rank - 1 tag 1;
        recv from rank - 1 tag 1;
        checkpoint "odd";
      }
    }
  })";

TEST(Match, Jacobi2MessageEdges) {
  const mp::Program p = mp::parse(kJacobi2);
  const ExtendedCfg ext = build_extended_cfg(p);
  // The paper's Figure 4: even-send ↔ odd-recv and odd-send ↔ even-recv.
  // Even's dest rank+1 is odd; odd's dest rank-1 is even. No same-parity
  // edges can exist.
  EXPECT_EQ(ext.message_edges().size(), 2u);
  for (const auto& e : ext.message_edges()) {
    const auto& send_stmt =
        *static_cast<const mp::SendStmt*>(ext.graph().node(e.send).stmt);
    const auto& recv_stmt =
        *static_cast<const mp::RecvStmt*>(ext.graph().node(e.recv).stmt);
    EXPECT_EQ(send_stmt.tag, recv_stmt.tag);
    // Witness sender/receiver differ in parity.
    EXPECT_NE(e.witness.sender % 2, e.witness.receiver % 2);
  }
}

TEST(Match, TagMismatchPreventsMatching) {
  const mp::Program p = mp::parse(R"(
    program t {
      if (rank == 0) { send to 1 tag 5; } else { recv from 0 tag 6; }
    })");
  const ExtendedCfg ext = build_extended_cfg(p);
  EXPECT_TRUE(ext.message_edges().empty());
}

TEST(Match, RingShiftSelfStatementMatch) {
  // A single send+recv pair used by every rank: the send node matches the
  // recv node (different processes execute the same statements).
  const mp::Program p = mp::parse(R"(
    program ring {
      send to (rank + 1) % nprocs tag 2;
      recv from (rank - 1 + nprocs) % nprocs tag 2;
    })");
  const ExtendedCfg ext = build_extended_cfg(p);
  ASSERT_EQ(ext.message_edges().size(), 1u);
  const auto& e = ext.message_edges()[0];
  EXPECT_EQ(ext.graph().node(e.send).kind, cfg::NodeKind::kSend);
  EXPECT_EQ(ext.graph().node(e.recv).kind, cfg::NodeKind::kRecv);
}

TEST(Match, MasterGatherEdges) {
  const mp::Program p = mp::parse(R"(
    program gather {
      if (rank == 0) {
        for w in 1 .. nprocs { recv from w tag 3; }
      } else {
        send to 0 tag 3;
      }
    })");
  const ExtendedCfg ext = build_extended_cfg(p);
  ASSERT_EQ(ext.message_edges().size(), 1u);
  EXPECT_EQ(ext.message_edges()[0].witness.receiver, 0);
}

TEST(Match, AnySourceMatchesAllCompatibleSends) {
  const mp::Program p = mp::parse(R"(
    program anysrc {
      if (rank == 0) {
        recv from any tag 4;
      } else {
        if (rank == 1) { send to 0 tag 4; } else { send to 0 tag 4; }
      }
    })");
  const ExtendedCfg ext = build_extended_cfg(p);
  // Both send statements match the wildcard receive.
  EXPECT_EQ(ext.message_edges().size(), 2u);
}

TEST(Match, PaperGreedyIsOneToOneForRegularPatterns) {
  // Two textually identical guarded exchanges: conservative matching
  // cross-matches them (same tags and attributes), greedy pairs first-fit.
  const mp::Program p = mp::parse(R"(
    program twophase {
      if (rank == 0) { send to 1 tag 7; } else { recv from 0 tag 7; }
      if (rank == 0) { send to 1 tag 7; } else { recv from 0 tag 7; }
    })");
  MatchOptions conservative;
  const ExtendedCfg ext_c = build_extended_cfg(p, conservative);
  EXPECT_EQ(ext_c.message_edges().size(), 4u);  // 2 sends × 2 recvs

  MatchOptions greedy;
  greedy.policy = MatchPolicy::kPaperGreedy;
  const ExtendedCfg ext_g = build_extended_cfg(p, greedy);
  EXPECT_EQ(ext_g.message_edges().size(), 2u);  // one edge per pair
}

TEST(Match, GreedyStillMultiMatchesIrregular) {
  const mp::Program p = mp::parse(R"(
    program irr {
      if (rank == 0) {
        recv from any tag 1;
      } else {
        if (rank == 1) { send to 0 tag 1; } else { send to 0 tag 1; }
      }
    })");
  MatchOptions greedy;
  greedy.policy = MatchPolicy::kPaperGreedy;
  const ExtendedCfg ext = build_extended_cfg(p, greedy);
  EXPECT_EQ(ext.message_edges().size(), 2u);
}

TEST(Match, CollectiveGetsSelfEdge) {
  const mp::Program p = mp::parse("program t { barrier; }");
  const ExtendedCfg ext = build_extended_cfg(p);
  ASSERT_EQ(ext.message_edges().size(), 1u);
  EXPECT_EQ(ext.message_edges()[0].send, ext.message_edges()[0].recv);
  EXPECT_EQ(ext.graph().node(ext.message_edges()[0].send).kind,
            cfg::NodeKind::kCollective);
}

TEST(Match, LoweredCollectiveMatchesPointToPoint) {
  const mp::Program p = mp::parse("program t { bcast root 0; }");
  const mp::Program lowered = mp::lower_collectives(p);
  const ExtendedCfg ext = build_extended_cfg(lowered);
  // Root's guarded send-to-w matches the non-root recv-from-0.
  ASSERT_GE(ext.message_edges().size(), 1u);
  for (const auto& e : ext.message_edges())
    EXPECT_NE(e.send, e.recv);
}

TEST(Match, EdgesFromAndTo) {
  const mp::Program p = mp::parse(kJacobi2);
  const ExtendedCfg ext = build_extended_cfg(p);
  for (const auto& e : ext.message_edges()) {
    const auto from = ext.edges_from(e.send);
    ASSERT_FALSE(from.empty());
    EXPECT_EQ(from[0].send, e.send);
    const auto to = ext.edges_to(e.recv);
    ASSERT_FALSE(to.empty());
    EXPECT_EQ(to[0].recv, e.recv);
  }
}

TEST(MatchPaths, MisalignedJacobiHasHardPath) {
  // Figure 2/3: even's checkpoint → even's send ⇒ odd's recv → odd's
  // checkpoint, all within one iteration — a message path with no back
  // edge between the two members of S_1.
  const mp::Program p = mp::parse(kJacobi2);
  const ExtendedCfg ext = build_extended_cfg(p);
  const auto ckpts = ext.graph().nodes_of_kind(cfg::NodeKind::kCheckpoint);
  ASSERT_EQ(ckpts.size(), 2u);
  // Find which is "even" (appears before send in its arm).
  cfg::NodeId even = cfg::kNoNode, odd = cfg::kNoNode;
  for (const auto& n : ckpts) {
    const auto& c = *static_cast<const mp::CheckpointStmt*>(n.stmt);
    (c.note == "even" ? even : odd) = n.id;
  }
  const auto pc = ext.classify_paths(even, odd);
  EXPECT_TRUE(pc.has_message_path);
  EXPECT_TRUE(pc.message_path_without_back_edge);
  // The reverse direction only exists across iterations (via back edge).
  const auto rev = ext.classify_paths(odd, even);
  EXPECT_TRUE(rev.has_message_path);
  EXPECT_FALSE(rev.message_path_without_back_edge);
}

TEST(MatchPaths, AlignedJacobiHasOnlyLoopCarriedPaths) {
  // Figure 1: checkpoint at the top of the loop body for everyone; the
  // only message paths between members of S_1 cross the back edge.
  const mp::Program p = mp::parse(R"(
    program jacobi1 {
      for it in 0 .. 10 {
        checkpoint;
        compute 5.0;
        if (rank % 2 == 0) {
          send to rank + 1 tag 1; recv from rank + 1 tag 1;
        } else {
          send to rank - 1 tag 1; recv from rank - 1 tag 1;
        }
      }
    })");
  const ExtendedCfg ext = build_extended_cfg(p);
  const auto ckpts = ext.graph().nodes_of_kind(cfg::NodeKind::kCheckpoint);
  ASSERT_EQ(ckpts.size(), 1u);
  const auto pc = ext.classify_paths(ckpts[0].id, ckpts[0].id);
  EXPECT_TRUE(pc.has_message_path);
  EXPECT_FALSE(pc.message_path_without_back_edge);
}

TEST(MatchPaths, NoMessagePathWithoutCommunication) {
  const mp::Program p = mp::parse(R"(
    program quiet {
      if (rank % 2 == 0) { checkpoint; compute 1.0; }
      else { compute 1.0; checkpoint; }
    })");
  const ExtendedCfg ext = build_extended_cfg(p);
  const auto ckpts = ext.graph().nodes_of_kind(cfg::NodeKind::kCheckpoint);
  ASSERT_EQ(ckpts.size(), 2u);
  const auto pc = ext.classify_paths(ckpts[0].id, ckpts[1].id);
  EXPECT_FALSE(pc.has_message_path);
}

TEST(MatchPaths, DotContainsMessageEdges) {
  const mp::Program p = mp::parse(kJacobi2);
  const ExtendedCfg ext = build_extended_cfg(p);
  const std::string dot = ext.to_dot("jacobi2");
  EXPECT_NE(dot.find("msg"), std::string::npos);
}

}  // namespace
