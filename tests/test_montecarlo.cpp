// The Monte-Carlo harness's determinism contract (src/sim/montecarlo.h):
// parallel batches are bit-identical to serial ones, aggregates are
// invariant under thread count and completion order, and failure-injection
// runs replay deterministically under the pool.
#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "mp/parser.h"
#include "sim/montecarlo.h"

namespace acfc::sim {
namespace {

constexpr const char* kRing = R"(
  program ring {
    loop 5 {
      compute 4.0;
      checkpoint;
      send to (rank + 1) % nprocs tag 1;
      recv from (rank - 1 + nprocs) % nprocs tag 1;
    }
  })";

void expect_same_run(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.trace.final_digest, b.trace.final_digest);
  EXPECT_EQ(a.trace.end_time, b.trace.end_time);  // bitwise, not approx
  EXPECT_EQ(a.trace.completed, b.trace.completed);
  EXPECT_EQ(a.trace.events.size(), b.trace.events.size());
  EXPECT_EQ(a.trace.checkpoints.size(), b.trace.checkpoints.size());
  EXPECT_EQ(a.stats.events_processed, b.stats.events_processed);
  EXPECT_EQ(a.stats.app_messages, b.stats.app_messages);
  EXPECT_EQ(a.stats.statement_checkpoints, b.stats.statement_checkpoints);
  EXPECT_EQ(a.stats.forced_checkpoints, b.stats.forced_checkpoints);
  EXPECT_EQ(a.stats.restarts, b.stats.restarts);
  EXPECT_EQ(a.final_sends, b.final_sends);
  EXPECT_EQ(a.final_recvs, b.final_recvs);
  ASSERT_EQ(a.recoveries.size(), b.recoveries.size());
  for (size_t i = 0; i < a.recoveries.size(); ++i) {
    const RecoveryRec& x = a.recoveries[i];
    const RecoveryRec& y = b.recoveries[i];
    EXPECT_EQ(x.failed_proc, y.failed_proc);
    EXPECT_EQ(x.fail_time, y.fail_time);      // bitwise
    EXPECT_EQ(x.resume_time, y.resume_time);  // bitwise
    EXPECT_EQ(x.cut.member, y.cut.member);
    EXPECT_EQ(x.rollbacks, y.rollbacks);
    EXPECT_EQ(x.lost_work, y.lost_work);
    EXPECT_EQ(x.replayed_messages, y.replayed_messages);
  }
}

/// seed × nprocs grid with compute jitter, exercising the engine RNG.
/// n=12 crosses VClock::kInlineCapacity so spilled clocks are covered.
std::vector<SimOptions> jittered_grid() {
  std::vector<SimOptions> configs;
  long index = 0;
  for (const int n : {2, 3, 5, 8, 12}) {
    for (int rep = 0; rep < 3; ++rep) {
      SimOptions opts;
      opts.nprocs = n;
      opts.seed = run_seed(42, index++);
      opts.compute_jitter = 0.3;
      configs.push_back(opts);
    }
  }
  return configs;
}

TEST(RunSeed, DeterministicAndDistinct) {
  EXPECT_EQ(run_seed(1, 0), run_seed(1, 0));
  std::set<std::uint64_t> seen;
  for (long i = 0; i < 256; ++i) seen.insert(run_seed(7, i));
  EXPECT_EQ(seen.size(), 256u);          // no collisions across indices
  EXPECT_NE(run_seed(1, 3), run_seed(2, 3));  // base seed matters
}

TEST(SeedSweep, SeedsDeriveFromRunIndex) {
  SimOptions base;
  base.seed = 99;
  base.nprocs = 4;
  const auto configs = seed_sweep(base, 5);
  ASSERT_EQ(configs.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(configs[static_cast<size_t>(i)].seed, run_seed(99, i));
    EXPECT_EQ(configs[static_cast<size_t>(i)].nprocs, 4);
  }
}

TEST(ParallelBatch, BitIdenticalToSerial) {
  const mp::Program program = mp::parse(kRing);
  const auto configs = jittered_grid();

  McOptions serial;
  serial.threads = 1;
  const auto ref = run_batch(program, configs, serial);

  for (const int threads : {2, 4, 8}) {
    McOptions opts;
    opts.threads = threads;
    const auto got = run_batch(program, configs, opts);
    ASSERT_EQ(got.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      SCOPED_TRACE("threads=" + std::to_string(threads) + " run=" +
                   std::to_string(i));
      expect_same_run(got[i], ref[i]);
    }
  }
}

TEST(ParallelBatch, RepeatedRunsIdentical) {
  const mp::Program program = mp::parse(kRing);
  const auto configs = jittered_grid();
  McOptions opts;
  opts.threads = 4;
  const auto first = run_batch(program, configs, opts);
  const auto second = run_batch(program, configs, opts);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i)
    expect_same_run(first[i], second[i]);
}

TEST(Aggregate, InvariantUnderThreadCount) {
  const mp::Program program = mp::parse(kRing);
  const auto configs = jittered_grid();

  McOptions serial;
  serial.threads = 1;
  const McAggregate ref = aggregate(run_batch(program, configs, serial));
  EXPECT_EQ(ref.runs, static_cast<long>(configs.size()));
  EXPECT_EQ(ref.completed, ref.runs);
  EXPECT_GT(ref.events, 0);
  EXPECT_GT(ref.checkpoints, 0);

  McOptions pooled;
  pooled.threads = 6;
  const McAggregate got = aggregate(run_batch(program, configs, pooled));
  EXPECT_EQ(got.digest, ref.digest);
  EXPECT_EQ(got.events, ref.events);
  EXPECT_EQ(got.app_messages, ref.app_messages);
  EXPECT_EQ(got.checkpoints, ref.checkpoints);
  EXPECT_EQ(got.mean_makespan, ref.mean_makespan);
  EXPECT_EQ(got.max_makespan, ref.max_makespan);
}

TEST(Aggregate, AdditiveStatsOrderIndependent) {
  const mp::Program program = mp::parse(kRing);
  const auto configs = jittered_grid();
  McOptions opts;
  opts.threads = 4;
  auto runs = run_batch(program, configs, opts);
  const McAggregate forward = aggregate(runs);
  std::reverse(runs.begin(), runs.end());
  const McAggregate backward = aggregate(runs);
  // The additive statistics cannot depend on result order; only the
  // sequence-sensitive whole-batch digest may differ.
  EXPECT_EQ(backward.runs, forward.runs);
  EXPECT_EQ(backward.completed, forward.completed);
  EXPECT_EQ(backward.events, forward.events);
  EXPECT_EQ(backward.app_messages, forward.app_messages);
  EXPECT_EQ(backward.checkpoints, forward.checkpoints);
  EXPECT_EQ(backward.restarts, forward.restarts);
  // Reversing the fold order may shift the mean by an ULP (FP addition is
  // not associative); thread count never does, because results are
  // index-addressed — that bitwise guarantee is Aggregate.
  // InvariantUnderThreadCount's.
  EXPECT_DOUBLE_EQ(backward.mean_makespan, forward.mean_makespan);
  EXPECT_EQ(backward.max_makespan, forward.max_makespan);
}

TEST(FailureInjection, ReplaysDeterministicallyUnderPool) {
  const mp::Program program = mp::parse(kRing);

  // One failure schedule per run, staggered across processes and times.
  std::vector<SimOptions> configs;
  for (int i = 0; i < 8; ++i) {
    SimOptions opts;
    opts.nprocs = 4;
    opts.seed = run_seed(7, i);
    opts.recovery_overhead = 1.5;
    opts.failures = {{i % 4, 6.0 + 2.0 * i}};
    if (i % 2 == 1) opts.failures.push_back({(i + 1) % 4, 25.0});
    configs.push_back(opts);
  }

  McOptions serial;
  serial.threads = 1;
  const auto ref = run_batch(program, configs, serial);
  McOptions pooled;
  pooled.threads = 4;
  const auto got = run_batch(program, configs, pooled);

  ASSERT_EQ(got.size(), ref.size());
  long restarts = 0;
  for (size_t i = 0; i < ref.size(); ++i) {
    SCOPED_TRACE("run=" + std::to_string(i));
    EXPECT_TRUE(ref[i].trace.completed);
    expect_same_run(got[i], ref[i]);
    restarts += ref[i].stats.restarts;
  }
  EXPECT_GT(restarts, 0);  // the schedules really fired

  // Rollback + replay converges to the failure-free execution: digests
  // match a clean run with the same seed.
  for (size_t i = 0; i < configs.size(); ++i) {
    SimOptions clean = configs[i];
    clean.failures.clear();
    Engine engine(program, clean);
    const auto clean_run = engine.run();
    EXPECT_EQ(ref[i].trace.final_digest, clean_run.trace.final_digest)
        << "run " << i;
  }
}

TEST(FaultPlanBatch, BitIdenticalUnderPool) {
  // Declarative fault plans (time / after-checkpoint / after-events
  // triggers) obey the same parallel≡serial contract as plain failure
  // schedules — including the recorded recovery lines and the final
  // per-channel counters. Run under -DACFC_TSAN this also proves the
  // recovery path shares no mutable state across engines.
  const mp::Program program = mp::parse(kRing);

  std::vector<SimOptions> configs;
  for (int i = 0; i < 12; ++i) {
    SimOptions opts;
    opts.nprocs = 4;
    opts.seed = run_seed(23, i);
    opts.recovery_overhead = 1.0;
    opts.compute_jitter = 0.2;
    switch (i % 3) {
      case 0:
        opts.fault_plan.faults = {FaultPlan::at_time(i % 4, 6.0 + i)};
        break;
      case 1:
        opts.fault_plan.faults = {
            FaultPlan::after_checkpoint(i % 4, 1 + i % 3)};
        break;
      default:
        opts.fault_plan.faults = {FaultPlan::after_events(i % 4, 30 + 5 * i),
                                  FaultPlan::at_time((i + 2) % 4, 20.0)};
        break;
    }
    configs.push_back(opts);
  }

  McOptions serial;
  serial.threads = 1;
  const auto ref = run_batch(program, configs, serial);
  long restarts = 0;
  for (const auto& r : ref) restarts += r.stats.restarts;
  EXPECT_GT(restarts, 0);  // the plans really fired

  for (const int threads : {2, 4}) {
    McOptions pooled;
    pooled.threads = threads;
    const auto got = run_batch(program, configs, pooled);
    ASSERT_EQ(got.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      SCOPED_TRACE("threads=" + std::to_string(threads) + " run=" +
                   std::to_string(i));
      EXPECT_TRUE(ref[i].trace.completed);
      expect_same_run(got[i], ref[i]);
    }
  }
}

TEST(ParallelMap, PropagatesLowestIndexedException) {
  McOptions opts;
  opts.threads = 4;
  try {
    parallel_map(16L, opts, [](long i) -> int {
      if (i == 5 || i == 11) throw std::runtime_error("boom " +
                                                      std::to_string(i));
      return static_cast<int>(i);
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 5");
  }
}

TEST(ParallelMap, HandlesEmptyAndOversubscribedBatches) {
  McOptions opts;
  opts.threads = 8;
  EXPECT_TRUE(parallel_map(0L, opts, [](long i) { return i; }).empty());
  const auto out = parallel_map(3L, opts, [](long i) { return i * i; });
  EXPECT_EQ(out, (std::vector<long>{0, 1, 4}));
}

}  // namespace
}  // namespace acfc::sim
