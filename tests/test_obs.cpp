// Tests for the deterministic observability layer (src/obs/):
//   * metric primitive semantics — counter shard-merge, gauge high-water,
//     histogram log-bucket boundaries and saturation;
//   * snapshot/merge algebra — name-sorted freeze, associative and
//     commutative folds, trailing-bucket trimming;
//   * scoped spans — RAII emission, per-thread nesting depth, inert when
//     the registry pointer is null;
//   * exporters — JSON-lines round-trip, chrome://tracing validity (via
//     the repo's own trace::parse_json), byte determinism;
//   * sim::run_batch_observed — parallel vs serial merged snapshots are
//     byte-identical (the tentpole determinism claim);
//   * a multi-writer hammer that gives TSan the sharded registry.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "sim/montecarlo.h"
#include "trace/json.h"
#include "workloads/workloads.h"

namespace {

using namespace acfc;

// Most tests here assert on recorded values, which a -DACFC_OBS=OFF
// build intentionally discards; they skip there. Tests of pure functions
// (bucket_of), inertness, and parser robustness run in both builds.
#if ACFC_OBS
#define ACFC_REQUIRE_OBS() (void)0
#else
#define ACFC_REQUIRE_OBS() \
  GTEST_SKIP() << "observability compiled out (ACFC_OBS=0)"
#endif

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

TEST(ObsCounter, StartsAtZeroAndAccumulates) {
  ACFC_REQUIRE_OBS();
  obs::Counter c;
  EXPECT_EQ(c.value(), 0);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(ObsCounter, ConcurrentIncrementsSumExactly) {
  ACFC_REQUIRE_OBS();
  obs::Registry registry;
  obs::Counter& c = registry.counter("hammer.counter");
  constexpr int kThreads = 8;
  constexpr int kIncs = 20000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&c] {
      for (int i = 0; i < kIncs; ++i) c.inc();
    });
  for (auto& t : pool) t.join();
  // Shard assignment is per-thread and arbitrary; the merged total is not.
  EXPECT_EQ(c.value(), static_cast<long long>(kThreads) * kIncs);
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

TEST(ObsGauge, TracksValueAndHighWater) {
  ACFC_REQUIRE_OBS();
  obs::Gauge g;
  g.set(5);
  g.set(2);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.high_water(), 5);
  g.add(10);
  EXPECT_EQ(g.value(), 12);
  EXPECT_EQ(g.high_water(), 12);
  g.add(-12);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.high_water(), 12);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(ObsHistogram, BucketBoundariesAreBitWidths) {
  // v ≤ 0 → bucket 0; otherwise bucket bit_width(v): bucket i ≥ 1 covers
  // [2^(i-1), 2^i).
  EXPECT_EQ(obs::Histogram::bucket_of(-7), 0);
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3);
  EXPECT_EQ(obs::Histogram::bucket_of(7), 3);
  EXPECT_EQ(obs::Histogram::bucket_of(8), 4);
  EXPECT_EQ(obs::Histogram::bucket_of((1LL << 20) - 1), 20);
  EXPECT_EQ(obs::Histogram::bucket_of(1LL << 20), 21);
}

TEST(ObsHistogram, HugeValuesSaturateInTheLastBucket) {
  ACFC_REQUIRE_OBS();
  const int last = obs::Histogram::kBuckets - 1;
  EXPECT_EQ(obs::Histogram::bucket_of(std::numeric_limits<long long>::max()),
            last);
  obs::Histogram h;
  h.record(std::numeric_limits<long long>::max());      // bit width 63
  h.record(std::numeric_limits<long long>::max() - 1);  // bit width 63
  h.record(std::numeric_limits<long long>::max() / 2);  // width 62: below
  EXPECT_EQ(h.bucket_count(last), 2);
  EXPECT_EQ(h.bucket_count(last - 1), 1);
  EXPECT_EQ(h.count(), 3);
}

TEST(ObsHistogram, RecordTracksCountSumAndBuckets) {
  ACFC_REQUIRE_OBS();
  obs::Histogram h;
  h.record(1);
  h.record(3);
  h.record(3);
  h.record(100);
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.sum(), 107);
  EXPECT_EQ(h.bucket_count(1), 1);
  EXPECT_EQ(h.bucket_count(2), 2);
  EXPECT_EQ(h.bucket_count(7), 1);  // 100 ∈ [64, 128)
  EXPECT_EQ(h.bucket_count(3), 0);
}

TEST(ObsHistogram, AddBucketClampsOutOfRangeIndices) {
  ACFC_REQUIRE_OBS();
  obs::Histogram h;
  h.add_bucket(-3, 5);
  h.add_bucket(obs::Histogram::kBuckets + 10, 7);
  EXPECT_EQ(h.bucket_count(0), 5);
  EXPECT_EQ(h.bucket_count(obs::Histogram::kBuckets - 1), 7);
  EXPECT_EQ(h.count(), 12);
}

// ---------------------------------------------------------------------------
// Registry + snapshot
// ---------------------------------------------------------------------------

TEST(ObsRegistry, SameNameReturnsTheSameHandle) {
  ACFC_REQUIRE_OBS();
  obs::Registry registry;
  obs::Counter& a = registry.counter("x.count", {"events", "engine"});
  obs::Counter& b = registry.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3);
}

TEST(ObsRegistry, SnapshotIsNameSortedWithMetaAndTrimmedBuckets) {
  ACFC_REQUIRE_OBS();
  obs::Registry registry;
  registry.counter("z.last", {"events", "engine"}).inc(9);
  registry.gauge("a.first", {"jobs", "persist"}).set(4);
  obs::Histogram& h = registry.histogram("m.mid", {"us", "store"});
  h.record(3);  // bucket 2: buckets trim to length 3

  const obs::MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.metrics[0].first, "a.first");
  EXPECT_EQ(snap.metrics[1].first, "m.mid");
  EXPECT_EQ(snap.metrics[2].first, "z.last");

  const obs::MetricSnap* gauge = snap.find("a.first");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->kind, obs::MetricKind::kGauge);
  EXPECT_EQ(gauge->layer, "persist");
  EXPECT_EQ(gauge->unit, "jobs");
  EXPECT_EQ(gauge->value, 4);
  EXPECT_EQ(gauge->high_water, 4);

  const obs::MetricSnap* hist = snap.find("m.mid");
  ASSERT_NE(hist, nullptr);
  ASSERT_EQ(hist->buckets.size(), 3u);  // trailing zero buckets trimmed
  EXPECT_EQ(hist->buckets[2], 1);
  EXPECT_EQ(snap.find("missing"), nullptr);
}

TEST(ObsMerge, CountersAddGaugesMaxHighWaterHistogramsFold) {
  ACFC_REQUIRE_OBS();
  obs::Registry r1;
  r1.counter("c").inc(10);
  r1.gauge("g").set(7);
  r1.histogram("h").record(1);

  obs::Registry r2;
  r2.counter("c").inc(5);
  r2.gauge("g").set(3);
  r2.histogram("h").record(100);
  r2.counter("only2").inc(1);

  obs::MetricsSnapshot merged = r1.snapshot();
  obs::merge_into(merged, r2.snapshot());

  EXPECT_EQ(merged.find("c")->count, 15);
  EXPECT_EQ(merged.find("g")->value, 10);       // levels add
  EXPECT_EQ(merged.find("g")->high_water, 7);   // high-waters max
  EXPECT_EQ(merged.find("h")->count, 2);
  EXPECT_EQ(merged.find("h")->sum, 101);
  ASSERT_EQ(merged.find("h")->buckets.size(), 8u);  // widened to r2's
  EXPECT_EQ(merged.find("h")->buckets[1], 1);
  EXPECT_EQ(merged.find("h")->buckets[7], 1);
  EXPECT_EQ(merged.find("only2")->count, 1);
}

TEST(ObsMerge, FoldIsAssociativeAndCommutativeOnMetrics) {
  ACFC_REQUIRE_OBS();
  const auto make = [](long long c, long long g, long long v) {
    obs::Registry r;
    r.counter("c").inc(c);
    r.gauge("g").set(g);
    r.histogram("h").record(v);
    return r.snapshot();
  };
  const obs::MetricsSnapshot a = make(1, 10, 2);
  const obs::MetricsSnapshot b = make(2, 5, 70);
  const obs::MetricsSnapshot c = make(4, 20, 1000);

  obs::MetricsSnapshot left;  // (a ⊕ b) ⊕ c
  obs::merge_into(left, a);
  obs::merge_into(left, b);
  obs::merge_into(left, c);

  obs::MetricsSnapshot right;  // a ⊕ (b ⊕ c), then reordered folds
  obs::MetricsSnapshot bc;
  obs::merge_into(bc, b);
  obs::merge_into(bc, c);
  obs::merge_into(right, a);
  obs::merge_into(right, bc);
  EXPECT_EQ(left.metrics, right.metrics);

  obs::MetricsSnapshot rev;  // c ⊕ b ⊕ a
  obs::merge_into(rev, c);
  obs::merge_into(rev, b);
  obs::merge_into(rev, a);
  EXPECT_EQ(left.metrics, rev.metrics);
  EXPECT_EQ(obs::to_jsonl(left), obs::to_jsonl(rev));
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

TEST(ObsSpan, ScopedSpanEmitsClosedIntervalWithDepth) {
  ACFC_REQUIRE_OBS();
  obs::Registry registry;
  double now = 1.0;
  const auto clock = [&now] { return now; };
  {
    obs::ScopedSpan outer(&registry, "outer", 3, clock);
    now = 2.0;
    {
      obs::ScopedSpan inner(&registry, "inner", 3, clock);
      now = 3.0;
    }
    now = 4.0;
  }
  const obs::MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.spans.size(), 2u);
  // Inner closes first (RAII order).
  EXPECT_EQ(snap.spans[0], (obs::SpanRec{"inner", 3, 2.0, 3.0, 1}));
  EXPECT_EQ(snap.spans[1], (obs::SpanRec{"outer", 3, 1.0, 4.0, 0}));
}

TEST(ObsSpan, NullRegistryIsInertAndNeverReadsTheClock) {
  int clock_calls = 0;
  {
    obs::ScopedSpan span(nullptr, "ghost", 0, [&clock_calls] {
      ++clock_calls;
      return 0.0;
    });
  }
  EXPECT_EQ(clock_calls, 0);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

obs::MetricsSnapshot sample_snapshot() {
  obs::Registry registry;
  registry.counter("engine.events", {"events", "engine"}).inc(123);
  registry.gauge("persist.queue_depth", {"jobs", "persist"}).set(2);
  obs::Histogram& h = registry.histogram("store.bytes", {"bytes", "store"});
  h.record(100);
  h.record(5000);
  registry.emit_span("checkpoint", 1, 0.5, 1.25);
  registry.emit_span("rollback", 0, 2.0, 2.5, 1);
  return registry.snapshot();
}

TEST(ObsExport, JsonlRoundTripsExactly) {
  ACFC_REQUIRE_OBS();
  const obs::MetricsSnapshot snap = sample_snapshot();
  const std::string text = obs::to_jsonl(snap);
  const auto back = obs::snapshot_from_jsonl(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->metrics, snap.metrics);
  // Span times in the sample are whole microseconds, so the µs-integer
  // wire format reproduces them exactly (spans come back export-sorted).
  ASSERT_EQ(back->spans.size(), snap.spans.size());
  EXPECT_EQ(back->spans[0], snap.spans[0]);
  EXPECT_EQ(back->spans[1], snap.spans[1]);
  // And the round-trip is a fixed point at the byte level.
  EXPECT_EQ(obs::to_jsonl(*back), text);
}

TEST(ObsExport, JsonlIsByteDeterministicAcrossIdenticalRegistries) {
  EXPECT_EQ(obs::to_jsonl(sample_snapshot()),
            obs::to_jsonl(sample_snapshot()));
}

TEST(ObsExport, JsonlSkipsUnknownLinesAndRejectsMalformed) {
  const std::string text = obs::to_jsonl(sample_snapshot());
  const auto with_unknown = obs::snapshot_from_jsonl(
      "{\"future_record\":1}\n" + text + "\n\n");
  ASSERT_TRUE(with_unknown.has_value());
  EXPECT_EQ(with_unknown->metrics, sample_snapshot().metrics);

  EXPECT_FALSE(obs::snapshot_from_jsonl("{\"metric\":\"x\"").has_value());
  EXPECT_FALSE(obs::snapshot_from_jsonl("not json at all\n").has_value());
  EXPECT_FALSE(
      obs::snapshot_from_jsonl("{\"metric\":\"x\",\"kind\":\"widget\"}\n")
          .has_value());
}

TEST(ObsExport, ChromeTraceIsValidJsonWithSpanAndCounterEvents) {
  ACFC_REQUIRE_OBS();
  const std::string text = obs::to_chrome_trace(sample_snapshot());
  const auto doc = trace::parse_json(text);
  ASSERT_TRUE(doc.has_value());
  ASSERT_EQ(doc->kind, trace::Json::Kind::kObject);
  const auto& top = *doc->object;
  ASSERT_TRUE(top.count("traceEvents"));
  const auto& events = *top.at("traceEvents").array;
  // 2 spans ("X") + 3 metrics ("C").
  ASSERT_EQ(events.size(), 5u);
  int xs = 0, cs = 0;
  for (const auto& ev : events) {
    const auto& e = *ev.object;
    const std::string ph = e.at("ph").string;
    ASSERT_TRUE(e.count("name"));
    ASSERT_TRUE(e.count("ts"));
    if (ph == "X") {
      ++xs;
      ASSERT_TRUE(e.count("dur"));
    } else if (ph == "C") {
      ++cs;
      ASSERT_TRUE(e.count("args"));
    }
  }
  EXPECT_EQ(xs, 2);
  EXPECT_EQ(cs, 3);
}

TEST(ObsExport, ChromeTraceGoldenBytes) {
  ACFC_REQUIRE_OBS();
  // Pins the exact wire format: any byte-level change to the exporter is
  // a deliberate format bump, not an accident.
  obs::Registry registry;
  registry.counter("c", {"events", "engine"}).inc(7);
  registry.emit_span("take", 2, 0.0, 0.001, 0);
  EXPECT_EQ(
      obs::to_chrome_trace(registry.snapshot()),
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"name\":\"take\",\"ph\":\"X\",\"cat\":\"sim\",\"pid\":0,\"tid\":2,"
      "\"ts\":0,\"dur\":1000,\"args\":{\"depth\":0}},"
      "{\"name\":\"c\",\"ph\":\"C\",\"cat\":\"metrics\",\"pid\":0,\"tid\":0,"
      "\"ts\":0,\"args\":{\"value\":7}}]}");
}

// ---------------------------------------------------------------------------
// Instrumented engine runs + parallel ≡ serial aggregation
// ---------------------------------------------------------------------------

mp::Program ring_program() {
  benchws::RingParams params;
  params.iterations = 6;
  params.checkpoint = true;
  return benchws::ring_exchange(params);
}

TEST(ObsEngine, InstrumentedRunExportsEngineAndCalqueueLayers) {
  ACFC_REQUIRE_OBS();
  const mp::Program program = ring_program();
  obs::Registry registry;
  sim::SimOptions opts;
  opts.nprocs = 4;
  opts.obs = &registry;
  opts.failures = {{1, 25.0}};
  sim::Engine engine(program, opts);
  const sim::SimResult result = engine.run();

  const obs::MetricsSnapshot snap = registry.snapshot();
  const obs::MetricSnap* events = snap.find("engine.events_processed");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->count, result.stats.events_processed);
  const obs::MetricSnap* ckpts = snap.find("engine.checkpoints_statement");
  ASSERT_NE(ckpts, nullptr);
  EXPECT_EQ(ckpts->count, result.stats.statement_checkpoints);
  EXPECT_NE(snap.find("calqueue.size_high_water"), nullptr);
  // The injected failure leaves a rollback span and a recovery counter.
  EXPECT_EQ(snap.find("engine.recoveries")->count, 1);
  bool has_rollback_span = false;
  for (const auto& span : snap.spans)
    has_rollback_span |= span.name == "rollback";
  EXPECT_TRUE(has_rollback_span);
}

TEST(ObsEngine, DetachedRegistryStaysEmpty) {
  const mp::Program program = ring_program();
  sim::SimOptions opts;
  opts.nprocs = 4;
  ASSERT_EQ(opts.obs, nullptr);  // the shipping default
  sim::Engine engine(program, opts);
  engine.run();
  // Nothing to assert on a registry that was never attached — the claim
  // is cheapness, pinned by bench BM_ObsOverhead/0; here we only pin that
  // running without obs is the default and works.
}

TEST(ObsBatch, ParallelAndSerialMergedSnapshotsAreByteIdentical) {
  ACFC_REQUIRE_OBS();
  const mp::Program program = ring_program();
  sim::SimOptions base;
  base.nprocs = 4;
  base.compute_jitter = 0.2;
  const std::vector<sim::SimOptions> configs = sim::seed_sweep(base, 8);

  const sim::ObservedBatch serial =
      sim::run_batch_observed(program, configs, sim::McOptions{1});
  const sim::ObservedBatch parallel =
      sim::run_batch_observed(program, configs, sim::McOptions{4});

  ASSERT_EQ(serial.results.size(), parallel.results.size());
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    EXPECT_EQ(serial.results[i].stats.events_processed,
              parallel.results[i].stats.events_processed);
    EXPECT_EQ(serial.snapshots[i].metrics, parallel.snapshots[i].metrics);
  }
  EXPECT_EQ(obs::to_jsonl(serial.merged), obs::to_jsonl(parallel.merged));
  // And the merged fold actually aggregated: events equal the batch total.
  long long total = 0;
  for (const auto& r : serial.results) total += r.stats.events_processed;
  EXPECT_EQ(serial.merged.find("engine.events_processed")->count, total);
}

// ---------------------------------------------------------------------------
// Multi-writer hammer (TSan coverage of shards, gauge CAS, registration)
// ---------------------------------------------------------------------------

TEST(ObsRegistry, ConcurrentWritersAndSnapshotsRaceCleanly) {
  ACFC_REQUIRE_OBS();
  obs::Registry registry;
  constexpr int kThreads = 6;
  constexpr int kOps = 4000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&registry, t] {
      // Every thread registers the same names (exercising the guarded
      // registration path) and hammers all three kinds.
      obs::Counter& c = registry.counter("war.counter");
      obs::Gauge& g = registry.gauge("war.gauge");
      obs::Histogram& h = registry.histogram("war.hist");
      for (int i = 0; i < kOps; ++i) {
        c.inc();
        g.set(i % 97);
        h.record(i);
        if (i % 512 == 0) registry.emit_span("war.span", t, 0.0, 1.0);
      }
    });
  // Concurrent reader: snapshots taken mid-hammer must be well-formed
  // (monotone counter reads, never torn strings), though not final.
  long long last_seen = 0;
  for (int i = 0; i < 50; ++i) {
    const obs::MetricsSnapshot snap = registry.snapshot();
    if (const obs::MetricSnap* c = snap.find("war.counter")) {
      EXPECT_GE(c->count, last_seen);
      last_seen = c->count;
    }
  }
  for (auto& t : pool) t.join();
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.find("war.counter")->count,
            static_cast<long long>(kThreads) * kOps);
  EXPECT_EQ(snap.find("war.hist")->count,
            static_cast<long long>(kThreads) * kOps);
  EXPECT_LE(snap.find("war.gauge")->high_water, 96);
}

}  // namespace
