// Unit tests for the MiniMP DSL parser and printer, including round-trip
// (parse → print → parse) structural stability and error reporting.
#include <gtest/gtest.h>

#include "mp/parser.h"
#include "mp/printer.h"
#include "util/error.h"

namespace {

using namespace acfc::mp;
using acfc::util::ProgramError;

constexpr const char* kJacobiSource = R"(
# Figure 2 of the paper: misaligned Jacobi.
program jacobi2 {
  for it in 0 .. 10 {
    compute 5.0 label "stencil";
    if (rank % 2 == 0) {
      checkpoint "even";
      if (rank + 1 < nprocs) {
        send to rank + 1 tag 1;
        recv from rank + 1 tag 1;
      }
    } else {
      send to rank - 1 tag 1;
      recv from rank - 1 tag 1;
      checkpoint "odd";
    }
  }
}
)";

TEST(Parser, ParsesJacobi) {
  const Program p = parse(kJacobiSource);
  EXPECT_EQ(p.name, "jacobi2");
  ASSERT_EQ(p.body.size(), 1u);
  EXPECT_EQ(p.body.stmts[0]->kind(), StmtKind::kLoop);
  EXPECT_EQ(checkpoint_count(p), 2);
}

TEST(Parser, LoopBounds) {
  const Program p = parse(kJacobiSource);
  const auto& loop = static_cast<const LoopStmt&>(*p.body.stmts[0]);
  EXPECT_EQ(loop.var, "it");
  EXPECT_EQ(loop.lo.const_value(), 0);
  EXPECT_EQ(loop.hi.const_value(), 10);
}

TEST(Parser, SendRecvParameters) {
  const Program p = parse(
      "program t { send to (rank + 1) % nprocs tag 3 bytes 64; "
      "recv from any tag 3; }");
  const auto& send = static_cast<const SendStmt&>(*p.body.stmts[0]);
  EXPECT_EQ(send.tag, 3);
  EXPECT_EQ(send.bytes, 64);
  EXPECT_EQ(send.dest.str(), "(rank + 1) % nprocs");
  const auto& recv = static_cast<const RecvStmt&>(*p.body.stmts[1]);
  EXPECT_TRUE(recv.any_source);
  EXPECT_EQ(recv.tag, 3);
}

TEST(Parser, ComputeWithIntegerCost) {
  const Program p = parse("program t { compute 2; }");
  EXPECT_DOUBLE_EQ(static_cast<const ComputeStmt&>(*p.body.stmts[0]).cost,
                   2.0);
}

TEST(Parser, CheckpointNote) {
  const Program p = parse("program t { checkpoint \"phase-1\"; }");
  EXPECT_EQ(static_cast<const CheckpointStmt&>(*p.body.stmts[0]).note,
            "phase-1");
}

TEST(Parser, Collectives) {
  const Program p =
      parse("program t { barrier tag 2; bcast root 0 tag 1 bytes 128; }");
  EXPECT_EQ(p.body.stmts[0]->kind(), StmtKind::kBarrier);
  const auto& bcast = static_cast<const BcastStmt&>(*p.body.stmts[1]);
  EXPECT_EQ(bcast.tag, 1);
  EXPECT_EQ(bcast.bytes, 128);
}

TEST(Parser, LoopSugarGetsFreshVariable) {
  const Program p =
      parse("program t { loop 4 { compute 1.0; } loop 2 { compute 1.0; } }");
  const auto& l0 = static_cast<const LoopStmt&>(*p.body.stmts[0]);
  const auto& l1 = static_cast<const LoopStmt&>(*p.body.stmts[1]);
  EXPECT_NE(l0.var, l1.var);
  EXPECT_EQ(l0.hi.const_value(), 4);
}

TEST(Parser, PredicatePrecedence) {
  const Program p = parse(
      "program t { if (rank == 0 || rank == 1 && nprocs > 2) "
      "{ compute 1.0; } }");
  const auto& iff = static_cast<const IfStmt&>(*p.body.stmts[0]);
  // || binds loosest: (rank==0) || ((rank==1) && (nprocs>2)).
  EXPECT_EQ(iff.cond.kind(), PredKind::kOr);
}

TEST(Parser, ParenthesizedPredicate) {
  const Program p = parse(
      "program t { if ((rank == 0 || rank == 1) && nprocs > 2) "
      "{ compute 1.0; } }");
  const auto& iff = static_cast<const IfStmt&>(*p.body.stmts[0]);
  EXPECT_EQ(iff.cond.kind(), PredKind::kAnd);
  EXPECT_EQ(iff.cond.lhs().kind(), PredKind::kOr);
}

TEST(Parser, ParenthesizedArithmeticInPredicate) {
  const Program p =
      parse("program t { if ((rank + 1) % 2 == 0) { compute 1.0; } }");
  const auto& iff = static_cast<const IfStmt&>(*p.body.stmts[0]);
  EXPECT_EQ(iff.cond.kind(), PredKind::kCmp);
  EXPECT_EQ(iff.cond.cmp_lhs().str(), "(rank + 1) % 2");
}

TEST(Parser, IrregularPredicateAndExpr) {
  const Program p = parse(
      "program t { if (irregular(1)) { compute 1.0; } "
      "if (irregular(2) == 3) { compute 1.0; } "
      "send to irregular(4); }");
  const auto& p0 = static_cast<const IfStmt&>(*p.body.stmts[0]);
  EXPECT_EQ(p0.cond.kind(), PredKind::kIrregular);
  const auto& p1 = static_cast<const IfStmt&>(*p.body.stmts[1]);
  EXPECT_EQ(p1.cond.kind(), PredKind::kCmp);
  const auto& send = static_cast<const SendStmt&>(*p.body.stmts[2]);
  EXPECT_EQ(send.dest.kind(), ExprKind::kIrregular);
}

TEST(Parser, NegatedPredicate) {
  const Program p = parse("program t { if (!(rank == 0)) { compute 1.0; } }");
  const auto& iff = static_cast<const IfStmt&>(*p.body.stmts[0]);
  EXPECT_EQ(iff.cond.kind(), PredKind::kNot);
}

TEST(Parser, CommentsIgnored) {
  const Program p = parse(
      "program t { # a comment\n compute 1.0; # trailing\n }");
  EXPECT_EQ(p.body.size(), 1u);
}

TEST(Parser, IntRangeNotConfusedWithFloat) {
  // "0 .. 10" and "0..10" both parse: '..' must not lex as a float dot.
  const Program p = parse("program t { for i in 0..10 { compute 1.0; } }");
  const auto& loop = static_cast<const LoopStmt&>(*p.body.stmts[0]);
  EXPECT_EQ(loop.hi.const_value(), 10);
}

TEST(Parser, ErrorsCarryLocation) {
  try {
    parse("program t {\n  compute ;\n}");
    FAIL() << "expected ProgramError";
  } catch (const ProgramError& e) {
    EXPECT_NE(std::string(e.what()).find("2:"), std::string::npos);
  }
}

TEST(Parser, MissingSemicolonFails) {
  EXPECT_THROW(parse("program t { compute 1.0 }"), ProgramError);
}

TEST(Parser, UnterminatedStringFails) {
  EXPECT_THROW(parse("program t { checkpoint \"oops; }"), ProgramError);
}

TEST(Parser, TrailingGarbageFails) {
  EXPECT_THROW(parse("program t { } extra"), ProgramError);
}

TEST(Parser, UnknownStatementFails) {
  EXPECT_THROW(parse("program t { fly to the moon; }"), ProgramError);
}

TEST(Parser, MissingFileThrows) {
  EXPECT_THROW(parse_file("/nonexistent/path.mp"), ProgramError);
}

TEST(Printer, RoundTripJacobi) {
  const Program p = parse(kJacobiSource);
  const std::string text = print(p);
  const Program q = parse(text);
  EXPECT_EQ(q.stmt_count(), p.stmt_count());
  EXPECT_EQ(checkpoint_count(q), checkpoint_count(p));
  // Second round trip is a fixed point.
  EXPECT_EQ(print(q), text);
}

TEST(Printer, RoundTripAllStatementKinds) {
  const char* source =
      "program all {\n"
      "  compute 1.5 label \"w\";\n"
      "  send to rank + 1 tag 2 bytes 8;\n"
      "  recv from any tag 2;\n"
      "  recv from rank - 1;\n"
      "  checkpoint \"c\";\n"
      "  barrier tag 1;\n"
      "  bcast root 0 tag 3 bytes 16;\n"
      "  if (rank % 2 == 0) {\n"
      "    compute 1.0;\n"
      "  } else {\n"
      "    compute 2.0;\n"
      "  }\n"
      "  for i in 1 .. nprocs {\n"
      "    send to i tag 4;\n"
      "  }\n"
      "}\n";
  const Program p = parse(source);
  const Program q = parse(print(p));
  EXPECT_EQ(q.stmt_count(), p.stmt_count());
  EXPECT_EQ(print(q), print(p));
}

TEST(Printer, ShowCheckpointIds) {
  const Program p = parse("program t { checkpoint; }");
  PrintOptions opts;
  opts.show_checkpoint_ids = true;
  EXPECT_NE(print(p, opts).find("ckpt_id=0"), std::string::npos);
}

}  // namespace
