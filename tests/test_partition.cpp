// Partition / gray-failure / supervision tests (docs/simulator.md,
// "Partitions, gray failures & supervision"):
//
//  * fault-model semantics: fast-path partitions defer departures to the
//    heal, lossy-wire partitions drop attempts and the reliable shim's
//    retransmits carry across, stalls defer a process's events in order,
//    slow links stretch the schedule — all without changing final state;
//  * the heartbeat Detector as a pure state machine;
//  * the Supervisor: crash → unanimous suspicion → backoff restart →
//    completion with detection latency / downtime stamped; false suspicion
//    under partition is safe (wasteful rollback, identical final state);
//    budget exhaustion quarantines and the run degrades gracefully —
//    upstream pipeline stages still finish, a wedged ring terminates via
//    dormancy instead of spinning to max_events;
//  * bit-determinism: same seed ⇒ identical digests, detection times, and
//    restart counts; serial ≡ parallel batches;
//  * PartitionOracleSlow: a 104-combination crash × partition × stall
//    sweep through the recovery oracle under supervision.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "mp/parser.h"
#include "obs/metrics.h"
#include "sim/detector.h"
#include "sim/engine.h"
#include "sim/montecarlo.h"
#include "sim/recovery.h"
#include "sim/supervisor.h"
#include "workloads/workloads.h"

namespace {

using namespace acfc;

constexpr const char* kRing = R"(
  program ring {
    loop 6 {
      compute 3.0;
      checkpoint;
      send to (rank + 1) % nprocs tag 1;
      recv from (rank - 1 + nprocs) % nprocs tag 1;
    }
  })";

sim::SimOptions ring_options() {
  sim::SimOptions opts;
  opts.nprocs = 4;
  opts.seed = 1;
  opts.recovery_overhead = 0.5;
  return opts;
}

sim::SimResult run_ring(const sim::SimOptions& opts,
                        sim::ProtocolDriver* driver = nullptr) {
  const mp::Program program = mp::parse(kRing);
  sim::Engine engine(program, opts, driver);
  return engine.run();
}

/// Supervision tuned to the ring's ~20 s makespan: heartbeats every 0.5 s,
/// suspicion after 2 s of silence, a 1 s detector sweep.
sim::SupervisorOptions ring_supervision(int budget = 3) {
  sim::SupervisorOptions so;
  so.detector.hb_interval = 0.5;
  so.detector.timeout = 2.0;
  so.detector.hb_bytes = 1;
  so.poll_interval = 1.0;
  so.restart_budget = budget;
  so.backoff_base = 0.5;
  so.backoff_factor = 2.0;
  so.backoff_max = 2.0;
  return so;
}

// ---------------------------------------------------------------------------
// Fault-model plumbing

TEST(FaultPlanModel, WindowHelpersAndEmptinessCoverTheNewKinds) {
  sim::FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.partitions = {sim::FaultPlan::partition({1, 2}, 3.0, 7.0, false)};
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.partitions[0].group, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(plan.partitions[0].start, 3.0);
  EXPECT_DOUBLE_EQ(plan.partitions[0].heal, 7.0);
  EXPECT_FALSE(plan.partitions[0].symmetric);

  plan = {};
  plan.stalls = {sim::FaultPlan::stall(2, 1.0, 0.5)};
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.stalls[0].proc, 2);
  EXPECT_DOUBLE_EQ(plan.stalls[0].duration, 0.5);

  plan = {};
  plan.slow_links = {sim::FaultPlan::slow_link(0, 3, 2.0, 9.0, 10.0)};
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.slow_links[0].src, 0);
  EXPECT_EQ(plan.slow_links[0].dst, 3);
  EXPECT_DOUBLE_EQ(plan.slow_links[0].factor, 10.0);
}

// ---------------------------------------------------------------------------
// Partition / stall / slow-link semantics on the engine

TEST(Partition, FastPathDefersSendsToTheHealAndReplaysIdentically) {
  const sim::SimResult reference = run_ring(ring_options());
  ASSERT_TRUE(reference.trace.completed);

  sim::SimOptions opts = ring_options();
  opts.fault_plan.partitions = {sim::FaultPlan::partition({1}, 5.0, 12.0)};
  const sim::SimResult cut = run_ring(opts);
  ASSERT_TRUE(cut.trace.completed);
  EXPECT_GT(cut.stats.partition_deferred_sends, 0);
  EXPECT_EQ(cut.stats.partition_dropped_attempts, 0);  // reliable fast path
  // Deferral only delays delivery; the final state is unchanged and the
  // schedule is strictly no shorter.
  EXPECT_EQ(cut.trace.final_digest, reference.trace.final_digest);
  EXPECT_GE(cut.trace.end_time, reference.trace.end_time);
}

TEST(Partition, AsymmetricCutBlocksOnlyGroupToComplement) {
  const sim::SimResult reference = run_ring(ring_options());

  sim::SimOptions sym = ring_options();
  sym.fault_plan.partitions = {
      sim::FaultPlan::partition({1}, 5.0, 12.0, /*symmetric=*/true)};
  const sim::SimResult sym_run = run_ring(sym);

  sim::SimOptions asym = ring_options();
  asym.fault_plan.partitions = {
      sim::FaultPlan::partition({1}, 5.0, 12.0, /*symmetric=*/false)};
  const sim::SimResult asym_run = run_ring(asym);

  ASSERT_TRUE(sym_run.trace.completed);
  ASSERT_TRUE(asym_run.trace.completed);
  // The one-way cut still defers 1's departures, but leaves 0→1 alone —
  // the two-way cut can only defer more.
  EXPECT_GT(asym_run.stats.partition_deferred_sends, 0);
  EXPECT_GE(sym_run.stats.partition_deferred_sends,
            asym_run.stats.partition_deferred_sends);
  EXPECT_EQ(sym_run.trace.final_digest, reference.trace.final_digest);
  EXPECT_EQ(asym_run.trace.final_digest, reference.trace.final_digest);
}

TEST(Partition, LossyWireDropsAttemptsAndTheShimCarriesAcrossTheHeal) {
  sim::SimOptions base = ring_options();
  base.delay.drop = 0.02;  // activates the reliable-transport shim
  const sim::SimResult reference = run_ring(base);
  ASSERT_TRUE(reference.trace.completed);

  sim::SimOptions opts = base;
  opts.fault_plan.partitions = {sim::FaultPlan::partition({2}, 4.0, 8.0)};
  const sim::SimResult cut = run_ring(opts);
  ASSERT_TRUE(cut.trace.completed);
  // On the lossy wire the cut eats transmission attempts outright; the
  // RTO retransmissions after the heal are what deliver the payloads.
  EXPECT_GT(cut.stats.partition_dropped_attempts, 0);
  EXPECT_EQ(cut.stats.partition_deferred_sends, 0);
  EXPECT_GT(cut.stats.transport_retransmits,
            reference.stats.transport_retransmits);
  EXPECT_EQ(cut.stats.transport_give_ups, 0);
  EXPECT_EQ(cut.trace.final_digest, reference.trace.final_digest);
}

TEST(Stall, DefersTheProcessesEventsInOrderAndReplaysIdentically) {
  const sim::SimResult reference = run_ring(ring_options());

  sim::SimOptions opts = ring_options();
  opts.fault_plan.stalls = {sim::FaultPlan::stall(2, 4.0, 5.0)};
  const sim::SimResult stalled = run_ring(opts);
  ASSERT_TRUE(stalled.trace.completed);
  EXPECT_GT(stalled.stats.stall_deferred_events, 0);
  EXPECT_EQ(stalled.trace.final_digest, reference.trace.final_digest);
  EXPECT_GE(stalled.trace.end_time, reference.trace.end_time);
}

TEST(SlowLink, StretchesTheScheduleWithoutChangingFinalState) {
  const sim::SimResult reference = run_ring(ring_options());

  sim::SimOptions opts = ring_options();
  opts.fault_plan.slow_links = {
      sim::FaultPlan::slow_link(-1, -1, 0.0, 1e6, 100.0)};
  const sim::SimResult slowed = run_ring(opts);
  ASSERT_TRUE(slowed.trace.completed);
  EXPECT_EQ(slowed.trace.final_digest, reference.trace.final_digest);
  EXPECT_GT(slowed.trace.end_time, reference.trace.end_time);
}

// ---------------------------------------------------------------------------
// The heartbeat detector as a pure state machine

TEST(Detector, BootCountsAsAHeartbeatAndSilenceTimesOut) {
  sim::DetectorOptions dopts;
  dopts.hb_interval = 0.5;
  dopts.timeout = 2.0;
  sim::Detector d(3, dopts);
  EXPECT_FALSE(d.timed_out(0, 1, 1.9));
  EXPECT_TRUE(d.timed_out(0, 1, 2.5));
  d.note_heartbeat(0, 1, 1.0);
  EXPECT_FALSE(d.timed_out(0, 1, 2.5));
  EXPECT_TRUE(d.timed_out(0, 1, 3.5));
}

TEST(Detector, HeartbeatTimesAreMonotone) {
  sim::Detector d(2, {});
  d.note_heartbeat(0, 1, 5.0);
  d.note_heartbeat(0, 1, 4.0);  // late arrival of an older heartbeat
  EXPECT_FALSE(d.timed_out(0, 1, 5.0 + d.options().timeout));
}

TEST(Detector, SuspectAndTrustTransitionsCountOnce) {
  sim::Detector d(2, {});
  EXPECT_FALSE(d.suspected(0, 1));
  d.mark_suspected(0, 1);
  d.mark_suspected(0, 1);  // idempotent
  EXPECT_TRUE(d.suspected(0, 1));
  EXPECT_EQ(d.suspect_transitions(), 1);
  d.note_heartbeat(0, 1, 9.0);  // trust transition
  EXPECT_FALSE(d.suspected(0, 1));
  EXPECT_EQ(d.trust_transitions(), 1);
}

TEST(Detector, ResetClearsSuspicionsAndRestartsTheClock) {
  sim::DetectorOptions dopts;
  dopts.timeout = 1.5;
  sim::Detector d(3, dopts);
  d.mark_suspected(2, 0);
  d.reset(10.0);
  EXPECT_FALSE(d.suspected(2, 0));
  EXPECT_FALSE(d.timed_out(2, 0, 11.0));
  EXPECT_TRUE(d.timed_out(2, 0, 11.6));
}

// ---------------------------------------------------------------------------
// The supervisor: detection, restart, false suspicion, quarantine

TEST(Supervisor, DetectsACrashRestartsAndCompletesBitIdentically) {
  const mp::Program program = mp::parse(kRing);

  sim::Supervisor ref_sup(ring_supervision());
  sim::Engine ref_engine(program, ring_options(), &ref_sup);
  const sim::SimResult reference = ref_engine.run();
  ASSERT_TRUE(reference.trace.completed);
  EXPECT_EQ(reference.stats.suspicions, 0);

  sim::SimOptions opts = ring_options();
  opts.fault_plan.faults = {sim::FaultPlan::at_time(1, 7.0)};
  sim::Supervisor sup(ring_supervision());
  sim::Engine engine(program, opts, &sup);
  const sim::SimResult result = engine.run();

  ASSERT_TRUE(result.trace.completed);
  ASSERT_GE(result.recoveries.size(), 1u);
  const sim::RecoveryRec& rec = result.recoveries.front();
  EXPECT_EQ(rec.failed_proc, 1);
  EXPECT_FALSE(rec.false_suspicion);
  // Detection is an in-model protocol event: crash → ≥ timeout −
  // hb_interval of silence → the next poll reaches the verdict.
  EXPECT_GE(rec.detection_latency, 1.0);
  EXPECT_LE(rec.detection_latency, 5.0);
  EXPECT_GE(rec.downtime, rec.detection_latency);
  EXPECT_GE(result.stats.suspicions, 1);
  EXPECT_EQ(result.stats.false_suspicions, 0);
  EXPECT_GE(result.stats.supervised_restarts, 1);
  EXPECT_EQ(result.stats.quarantines, 0);
  // Heartbeats aimed at the dead process were dropped, not delivered.
  EXPECT_GT(result.stats.crash_dropped_events, 0);
  EXPECT_GE(sup.restarts(), 1);
  EXPECT_FALSE(sup.dormant());
  // Rollback recovery replays bit-identically to the failure-free run.
  EXPECT_EQ(result.trace.final_digest, reference.trace.final_digest);
}

TEST(Supervisor, FalseSuspicionUnderPartitionIsSafeButWasteful) {
  const mp::Program program = mp::parse(kRing);

  sim::Supervisor ref_sup(ring_supervision(/*budget=*/10));
  sim::Engine ref_engine(program, ring_options(), &ref_sup);
  const sim::SimResult reference = ref_engine.run();

  // No crash anywhere — a symmetric partition of {1} merely suppresses its
  // heartbeats for longer than the detector timeout.
  sim::SimOptions opts = ring_options();
  opts.fault_plan.partitions = {sim::FaultPlan::partition({1}, 6.0, 16.0)};
  sim::Supervisor sup(ring_supervision(/*budget=*/10));
  sim::Engine engine(program, opts, &sup);
  const sim::SimResult result = engine.run();

  ASSERT_TRUE(result.trace.completed);
  EXPECT_GE(result.stats.false_suspicions, 1);
  EXPECT_EQ(result.stats.quarantines, 0);
  bool saw_false_suspicion_rec = false;
  for (const auto& rec : result.recoveries)
    if (rec.false_suspicion) {
      saw_false_suspicion_rec = true;
      EXPECT_EQ(rec.failed_proc, 1);
    }
  EXPECT_TRUE(saw_false_suspicion_rec);
  EXPECT_GE(sup.false_suspicions(), 1);
  // Safety: the wasteful rollbacks still replay to the identical state.
  EXPECT_EQ(result.trace.final_digest, reference.trace.final_digest);
}

TEST(Supervisor, QuarantineTerminatesAWedgedRingGracefully) {
  // Budget 0: the first verdict retires the subject. Every ring process
  // depends on its neighbours, so the survivors wedge — the dormancy
  // watchdog must notice and let the run terminate incomplete instead of
  // spinning the control plane to max_events.
  const mp::Program program = mp::parse(kRing);
  sim::SimOptions opts = ring_options();
  opts.fault_plan.faults = {sim::FaultPlan::at_time(1, 6.0)};
  sim::Supervisor sup(ring_supervision(/*budget=*/0));
  sim::Engine engine(program, opts, &sup);
  const sim::SimResult result = engine.run();

  EXPECT_FALSE(result.trace.completed);
  EXPECT_GE(result.stats.quarantines, 1);
  EXPECT_EQ(result.stats.supervised_restarts, 0);
  EXPECT_TRUE(engine.is_quarantined(1));
  EXPECT_TRUE(sup.dormant());
  EXPECT_LT(result.stats.events_processed, 200'000);
}

TEST(Supervisor, QuarantinedSinkStillLetsUpstreamStagesFinish) {
  // A one-directional pipeline: stage r feeds r+1, the last stage is a
  // pure sink. Quarantining the sink must not stop stages 0..n-2 — this is
  // the graceful-degradation payoff over whole-run wedging.
  mp::WorkloadParams params;
  params.iterations = 4;
  params.compute_cost = 2.0;
  params.message_bytes = 64;
  const mp::Program program = mp::pipeline(params);

  sim::SimOptions opts;
  opts.nprocs = 4;
  opts.seed = 1;
  opts.recovery_overhead = 0.5;
  opts.fault_plan.faults = {sim::FaultPlan::at_time(3, 5.0)};

  sim::SupervisorOptions sopts = ring_supervision(/*budget=*/0);
  sopts.detector.hb_interval = 0.25;
  sopts.detector.timeout = 1.0;
  sopts.poll_interval = 0.5;
  sim::Supervisor sup(sopts);
  sim::Engine engine(program, opts, &sup);
  const sim::SimResult result = engine.run();

  EXPECT_FALSE(result.trace.completed);
  EXPECT_GE(result.stats.quarantines, 1);
  EXPECT_TRUE(engine.is_quarantined(3));
  for (int p = 0; p < 3; ++p)
    EXPECT_TRUE(engine.is_done(p)) << "upstream stage " << p << " wedged";
}

// ---------------------------------------------------------------------------
// Bit-determinism of supervised and window-injected runs

TEST(Determinism, SupervisedRunsAreBitIdenticalAcrossRepeats) {
  const mp::Program program = mp::parse(kRing);
  sim::SimOptions opts = ring_options();
  opts.fault_plan.faults = {sim::FaultPlan::at_time(2, 8.0)};
  opts.fault_plan.partitions = {sim::FaultPlan::partition({0}, 4.0, 7.0)};
  opts.fault_plan.stalls = {sim::FaultPlan::stall(3, 10.0, 1.5)};

  auto run_once = [&] {
    sim::Supervisor sup(ring_supervision(/*budget=*/10));
    sim::Engine engine(program, opts, &sup);
    return engine.run();
  };
  const sim::SimResult a = run_once();
  const sim::SimResult b = run_once();

  EXPECT_EQ(a.trace.final_digest, b.trace.final_digest);
  EXPECT_DOUBLE_EQ(a.trace.end_time, b.trace.end_time);
  EXPECT_EQ(a.stats.supervised_restarts, b.stats.supervised_restarts);
  EXPECT_EQ(a.stats.suspicions, b.stats.suspicions);
  EXPECT_EQ(a.stats.false_suspicions, b.stats.false_suspicions);
  ASSERT_EQ(a.recoveries.size(), b.recoveries.size());
  for (std::size_t i = 0; i < a.recoveries.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.recoveries[i].detection_latency,
                     b.recoveries[i].detection_latency);
    EXPECT_DOUBLE_EQ(a.recoveries[i].downtime, b.recoveries[i].downtime);
    EXPECT_EQ(a.recoveries[i].false_suspicion,
              b.recoveries[i].false_suspicion);
  }
}

TEST(Determinism, WindowInjectedBatchesAgreeSerialAndParallel) {
  const mp::Program program = mp::parse(kRing);
  sim::SimOptions base = ring_options();
  std::vector<sim::SimOptions> configs = sim::seed_sweep(base, 8);
  for (std::size_t i = 0; i < configs.size(); ++i)
    configs[i].fault_plan = sim::random_fault_plan(
        sim::run_seed(99, static_cast<long>(i)), base.nprocs, 16.0,
        /*max_faults=*/1, /*max_partitions=*/2, /*max_stalls=*/2);

  const auto serial = sim::run_batch(program, configs, {.threads = 1});
  const auto parallel = sim::run_batch(program, configs, {.threads = 4});
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].trace.final_digest, parallel[i].trace.final_digest)
        << "run " << i;
    EXPECT_DOUBLE_EQ(serial[i].trace.end_time, parallel[i].trace.end_time);
  }
  EXPECT_EQ(sim::aggregate(serial).digest, sim::aggregate(parallel).digest);
}

TEST(Determinism, SupervisedFanOutMatchesSerialExecution) {
  const mp::Program program = mp::parse(kRing);
  auto run_indexed = [&](int threads) {
    return sim::parallel_map(6, {.threads = threads}, [&](long i) {
      sim::SimOptions opts = ring_options();
      opts.seed = sim::run_seed(41, i);
      opts.fault_plan = sim::random_fault_plan(
          sim::run_seed(42, i), opts.nprocs, 16.0, /*max_faults=*/1,
          /*max_partitions=*/1, /*max_stalls=*/1);
      // Per-run-resources rule: each run owns its supervisor.
      sim::Supervisor sup(ring_supervision(/*budget=*/50));
      sim::Engine engine(program, opts, &sup);
      return engine.run();
    });
  };
  const auto serial = run_indexed(1);
  const auto parallel = run_indexed(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].trace.final_digest, parallel[i].trace.final_digest);
    EXPECT_EQ(serial[i].stats.supervised_restarts,
              parallel[i].stats.supervised_restarts);
    EXPECT_EQ(serial[i].stats.suspicions, parallel[i].stats.suspicions);
    ASSERT_EQ(serial[i].recoveries.size(), parallel[i].recoveries.size());
    for (std::size_t r = 0; r < serial[i].recoveries.size(); ++r)
      EXPECT_DOUBLE_EQ(serial[i].recoveries[r].detection_latency,
                       parallel[i].recoveries[r].detection_latency);
  }
}

// ---------------------------------------------------------------------------
// Observability: the detection control plane exports its counters

TEST(Obs, SupervisionMetricsAndOutageSpansAreExported) {
#if !ACFC_OBS
  GTEST_SKIP() << "observability compiled out (ACFC_OBS=0)";
#endif
  const mp::Program program = mp::parse(kRing);
  sim::SimOptions opts = ring_options();
  opts.fault_plan.faults = {sim::FaultPlan::at_time(1, 7.0)};
  opts.fault_plan.partitions = {sim::FaultPlan::partition({2}, 3.0, 4.0)};
  obs::Registry registry;
  opts.obs = &registry;
  sim::Supervisor sup(ring_supervision());
  sim::Engine engine(program, opts, &sup);
  const sim::SimResult result = engine.run();
  ASSERT_TRUE(result.trace.completed);

  const obs::MetricsSnapshot snap = registry.snapshot();
  // Counters and histograms both report their total/count in `count`.
  auto value_of = [&](const std::string& name) -> long long {
    for (const auto& [n, m] : snap.metrics)
      if (n == name) return m.count;
    ADD_FAILURE() << "metric " << name << " missing";
    return -1;
  };
  EXPECT_EQ(value_of("detector.suspicions"), result.stats.suspicions);
  EXPECT_EQ(value_of("supervisor.restarts"),
            result.stats.supervised_restarts);
  EXPECT_EQ(value_of("engine.crash_dropped_events"),
            result.stats.crash_dropped_events);
  EXPECT_EQ(value_of("partition.deferred_sends"),
            result.stats.partition_deferred_sends);
  EXPECT_GE(value_of("supervisor.detection_latency_us"), 1);
  EXPECT_GE(value_of("supervisor.downtime_us"), 1);
  bool saw_outage = false;
  for (const auto& span : snap.spans)
    if (span.name == "supervisor.outage") saw_outage = true;
  EXPECT_TRUE(saw_outage);
}

// ---------------------------------------------------------------------------
// The crash × partition × stall oracle sweep (slow tier)

TEST(PartitionOracleSlow, CrashPartitionStallCombinationsAllRecover) {
  const mp::Program program = mp::parse(kRing);
  sim::SimOptions base = ring_options();

  sim::SupervisorOptions sweep_sup = ring_supervision(/*budget=*/100);
  sweep_sup.detector.hb_interval = 0.25;
  sweep_sup.detector.timeout = 1.5;
  sweep_sup.poll_interval = 0.5;
  sweep_sup.backoff_base = 0.25;
  sweep_sup.backoff_max = 1.0;
  const sim::DriverFactory factory = [&sweep_sup] {
    return std::unique_ptr<sim::ProtocolDriver>(
        std::make_unique<sim::Supervisor>(sweep_sup));
  };

  // Probe the supervised failure-free makespan once so every window and
  // crash trigger lands inside the live part of the run.
  double horizon = 0.0;
  {
    sim::Supervisor sup(sweep_sup);
    sim::Engine engine(program, base, &sup);
    horizon = engine.run().trace.end_time * 0.9;
  }
  ASSERT_GT(horizon, 0.0);

  long combos = 0, rollbacks = 0, suspicions = 0, false_suspicions = 0;
  long plans_with_windows = 0;
  for (std::uint64_t seed = 1; seed <= 52; ++seed) {
    for (int variant = 0; variant < 2; ++variant) {
      ++combos;
      const sim::FaultPlan plan = sim::random_fault_plan(
          seed * 977 + static_cast<std::uint64_t>(variant), base.nprocs,
          horizon, /*max_faults=*/2, /*max_partitions=*/2, /*max_stalls=*/2);
      if (!plan.partitions.empty() || !plan.stalls.empty())
        ++plans_with_windows;
      const sim::OracleReport oracle =
          sim::check_recovery(program, base, plan, {}, factory);
      ASSERT_TRUE(oracle.ok)
          << "seed=" << seed << " variant=" << variant << ": "
          << oracle.failure;
      rollbacks += oracle.restarts;
      suspicions += oracle.metrics.suspicions;
      false_suspicions += oracle.metrics.false_suspicions;
    }
  }
  EXPECT_GE(combos, 100);
  // Vacuity guards: the sweep must actually exercise detection, rollback,
  // and gray-failure windows — not just replay failure-free runs.
  EXPECT_GE(rollbacks, combos / 4);
  EXPECT_GT(suspicions, 0);
  EXPECT_GT(false_suspicions, 0);
  EXPECT_GE(plans_with_windows, combos / 3);
}

}  // namespace
