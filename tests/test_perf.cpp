// Unit tests for the performance model: the generic Markov solver, the
// paper's closed-form Γ against the numeric chain solution, overhead-ratio
// monotonicity, protocol parameterization, and figure series shapes.
#include <gtest/gtest.h>

#include <cmath>

#include "perf/markov.h"
#include "perf/model.h"
#include "util/error.h"

namespace {

using namespace acfc;
using perf::MarkovChain;
using perf::ModelParams;
using perf::NetworkParams;
using perf::PaperConstants;

TEST(Markov, TwoStateDeterministic) {
  MarkovChain chain;
  const int a = chain.add_state("a");
  const int b = chain.add_state("b");
  chain.add_transition(a, b, 1.0, 7.0);
  const auto e = chain.expected_cost_to_absorption();
  EXPECT_DOUBLE_EQ(e[static_cast<size_t>(a)], 7.0);
  EXPECT_DOUBLE_EQ(e[static_cast<size_t>(b)], 0.0);
}

TEST(Markov, GeometricSelfLoop) {
  // Self-loop with probability q, exit with 1−q: expected loop count
  // q/(1−q), so expected cost = cost·(1/(1−q)).
  MarkovChain chain;
  const int s = chain.add_state("s");
  const int t = chain.add_state("t");
  chain.add_transition(s, s, 0.75, 2.0);
  chain.add_transition(s, t, 0.25, 2.0);
  const auto e = chain.expected_cost_to_absorption();
  EXPECT_NEAR(e[static_cast<size_t>(s)], 8.0, 1e-12);
}

TEST(Markov, ChainOfStates) {
  MarkovChain chain;
  const int a = chain.add_state("a");
  const int b = chain.add_state("b");
  const int c = chain.add_state("c");
  chain.add_transition(a, b, 1.0, 1.0);
  chain.add_transition(b, c, 1.0, 2.0);
  const auto e = chain.expected_cost_to_absorption();
  EXPECT_DOUBLE_EQ(e[static_cast<size_t>(a)], 3.0);
}

TEST(Markov, BadProbabilitiesThrow) {
  MarkovChain chain;
  const int a = chain.add_state("a");
  const int b = chain.add_state("b");
  chain.add_transition(a, b, 0.5, 1.0);  // sums to 0.5
  EXPECT_THROW(chain.expected_cost_to_absorption(), util::ProgramError);
}

TEST(Markov, NoAbsorptionPathThrows) {
  MarkovChain chain;
  const int a = chain.add_state("a");
  const int b = chain.add_state("b");
  chain.add_transition(a, b, 1.0, 1.0);
  chain.add_transition(b, a, 1.0, 1.0);
  EXPECT_THROW(chain.expected_cost_to_absorption(), util::ProgramError);
}

TEST(Markov, ExpectedVisits) {
  MarkovChain chain;
  const int s = chain.add_state("s");
  const int t = chain.add_state("t");
  chain.add_transition(s, s, 0.5, 1.0);
  chain.add_transition(s, t, 0.5, 1.0);
  // Visits to s from s: 1/(1−0.5) = 2 (including the initial visit).
  EXPECT_NEAR(chain.expected_visits(s, s), 2.0, 1e-12);
}

TEST(Markov, LinearSolver) {
  // 2x + y = 5; x − y = 1 → x = 2, y = 1.
  const auto x = perf::solve_linear({{2, 1}, {1, -1}}, {5, 1});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(Markov, SingularSolverThrows) {
  EXPECT_THROW(perf::solve_linear({{1, 1}, {2, 2}}, {1, 2}),
               util::ProgramError);
}

// ---------------------------------------------------------------------------
// The paper's closed form vs the exact chain solution
// ---------------------------------------------------------------------------

class GammaCrossCheck
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(GammaCrossCheck, ClosedFormEqualsChainSolution) {
  const auto [lambda, T, M] = GetParam();
  ModelParams p;
  p.lambda = lambda;
  p.T = T;
  p.M = M;
  const double closed = perf::expected_interval_time(p);
  const double numeric = perf::expected_interval_time_numeric(p);
  // The generic solver computes 1 − P(R_i→R_i) by subtraction, which for
  // extreme λ(T+R+L) is ill-conditioned (the closed form is exact); scale
  // the tolerance by that condition number.
  const double cond =
      std::exp(p.lambda * (p.T + p.R + p.total_latency()));
  const double tol = std::max(1e-9, 1e-14 * cond);
  EXPECT_NEAR(numeric / closed, 1.0, tol)
      << "λ=" << lambda << " T=" << T << " M=" << M;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GammaCrossCheck,
    ::testing::Combine(::testing::Values(1e-7, 1.23e-6, 1e-4, 1e-2),
                       ::testing::Values(30.0, 300.0, 3000.0),
                       ::testing::Values(0.0, 0.1, 5.0)));

TEST(Model, GammaApproachesTforSmallLambda) {
  // With a vanishing failure rate, Γ → T + O.
  ModelParams p;
  p.lambda = 1e-12;
  EXPECT_NEAR(perf::expected_interval_time(p), p.T + p.total_overhead(),
              1e-3);
}

TEST(Model, OverheadRatioPositive) {
  ModelParams p;  // paper defaults
  EXPECT_GT(perf::overhead_ratio(p), 0.0);
}

TEST(Model, OverheadRatioIncreasesWithLambda) {
  ModelParams a, b;
  a.lambda = 1e-6;
  b.lambda = 1e-4;
  EXPECT_LT(perf::overhead_ratio(a), perf::overhead_ratio(b));
}

TEST(Model, OverheadRatioIncreasesWithM) {
  ModelParams a, b;
  b.M = 10.0;
  EXPECT_LT(perf::overhead_ratio(a), perf::overhead_ratio(b));
}

TEST(Model, SystemFailureRate) {
  EXPECT_NEAR(perf::system_failure_rate(1.23e-6, 1), 1.23e-6, 1e-12);
  // ≈ n·p for small p.
  EXPECT_NEAR(perf::system_failure_rate(1.23e-6, 100), 100 * 1.23e-6,
              1e-8);
  EXPECT_GT(perf::system_failure_rate(1.23e-6, 200),
            perf::system_failure_rate(1.23e-6, 100));
}

TEST(Model, ProtocolCoordinationTimes) {
  NetworkParams net;
  net.w_m = 2e-3;
  net.w_b = 1e-6;
  const double per_msg = 2e-3 + 8e-6;
  EXPECT_DOUBLE_EQ(perf::protocol_coordination_time(
                       proto::Protocol::kAppDriven, 16, net),
                   0.0);
  EXPECT_DOUBLE_EQ(perf::protocol_coordination_time(
                       proto::Protocol::kSyncAndStop, 16, net),
                   5 * 15 * per_msg);
  EXPECT_DOUBLE_EQ(perf::protocol_coordination_time(
                       proto::Protocol::kChandyLamport, 16, net),
                   2 * 16 * 15 * per_msg);
}

TEST(Model, ParamsForUsesPaperConstants) {
  const ModelParams p =
      perf::params_for(proto::Protocol::kAppDriven, 8);
  EXPECT_DOUBLE_EQ(p.o, 1.78);
  EXPECT_DOUBLE_EQ(p.l, 4.292);
  EXPECT_DOUBLE_EQ(p.R, 3.32);
  EXPECT_DOUBLE_EQ(p.T, 300.0);
  EXPECT_DOUBLE_EQ(p.M, 0.0);
  EXPECT_NEAR(p.lambda, perf::system_failure_rate(1.23e-6, 8), 1e-15);
}

// ---------------------------------------------------------------------------
// Figure shapes (the paper's qualitative claims)
// ---------------------------------------------------------------------------

TEST(Figure8, AppDrivenAlwaysLowest) {
  const auto series =
      perf::figure8_series({2, 4, 8, 16, 32, 64, 128, 256, 512});
  ASSERT_EQ(series.size(), 3u);
  const auto& app = series[0];
  const auto& sas = series[1];
  const auto& cl = series[2];
  ASSERT_EQ(app.name, "appl-driven");
  for (size_t i = 0; i < app.points.size(); ++i) {
    EXPECT_LT(app.points[i].second, sas.points[i].second) << "point " << i;
    EXPECT_LT(app.points[i].second, cl.points[i].second) << "point " << i;
  }
}

TEST(Figure8, ClGrowsFasterThanSaS) {
  // C-L's quadratic message count must overtake SaS's linear one.
  const auto series = perf::figure8_series({64, 128, 256, 512});
  const auto& sas = series[1];
  const auto& cl = series[2];
  for (size_t i = 0; i < sas.points.size(); ++i)
    EXPECT_GT(cl.points[i].second, sas.points[i].second);
}

TEST(Figure8, OverheadGrowsWithN) {
  const auto series = perf::figure8_series({2, 32, 512});
  for (const auto& s : series)
    for (size_t i = 1; i < s.points.size(); ++i)
      EXPECT_GT(s.points[i].second, s.points[i - 1].second) << s.name;
}

TEST(Figure9, AppDrivenFlatOthersGrow) {
  const std::vector<double> wm = {1e-4, 1e-3, 1e-2, 1e-1, 1.0};
  const auto series = perf::figure9_series(wm, 32);
  const auto& app = series[0];
  const auto& sas = series[1];
  const auto& cl = series[2];
  // appl-driven is exactly flat: its M does not depend on w_m.
  for (size_t i = 1; i < app.points.size(); ++i)
    EXPECT_DOUBLE_EQ(app.points[i].second, app.points[0].second);
  // The others strictly increase in w_m.
  for (size_t i = 1; i < wm.size(); ++i) {
    EXPECT_GT(sas.points[i].second, sas.points[i - 1].second);
    EXPECT_GT(cl.points[i].second, cl.points[i - 1].second);
  }
}

TEST(Figure9, SeparationWidensWithWm) {
  const std::vector<double> wm = {1e-3, 1.0};
  const auto series = perf::figure9_series(wm, 32);
  const double gap_small = series[2].points[0].second -
                           series[0].points[0].second;
  const double gap_large = series[2].points[1].second -
                           series[0].points[1].second;
  EXPECT_GT(gap_large, gap_small * 10.0);
}

TEST(OptimalInterval, IsAMinimum) {
  ModelParams p = perf::params_for(proto::Protocol::kSyncAndStop, 64);
  const double t_star = perf::optimal_checkpoint_interval(p);
  ModelParams at = p;
  at.T = t_star;
  const double r_star = perf::overhead_ratio(at);
  for (const double factor : {0.5, 0.8, 1.25, 2.0}) {
    ModelParams off = p;
    off.T = t_star * factor;
    EXPECT_GE(perf::overhead_ratio(off), r_star - 1e-12)
        << "factor " << factor;
  }
}

TEST(OptimalInterval, MatchesYoungToFirstOrder) {
  // For small λ·T the exact optimum approaches sqrt(2·O/λ).
  ModelParams p;
  p.lambda = 1e-6;
  p.M = 0.0;
  const double t_star = perf::optimal_checkpoint_interval(p);
  const double young = perf::young_interval(p);
  EXPECT_NEAR(t_star / young, 1.0, 0.05);
}

TEST(OptimalInterval, GrowsWithCoordinationCost) {
  // More expensive checkpoints → checkpoint less often.
  ModelParams cheap = perf::params_for(proto::Protocol::kAppDriven, 64);
  ModelParams costly = cheap;
  costly.M = 50.0;
  EXPECT_GT(perf::optimal_checkpoint_interval(costly),
            perf::optimal_checkpoint_interval(cheap));
}

TEST(OptimalInterval, OrderingPreservedAtOptima) {
  // Tuning T cannot erase the coordination gap.
  double previous = -1.0;
  for (const auto protocol :
       {proto::Protocol::kAppDriven, proto::Protocol::kSyncAndStop,
        proto::Protocol::kChandyLamport}) {
    ModelParams p = perf::params_for(protocol, 128);
    p.T = perf::optimal_checkpoint_interval(p);
    const double r = perf::overhead_ratio(p);
    EXPECT_GT(r, previous);
    previous = r;
  }
}

TEST(WasteBreakdown, FractionsSumToOne) {
  for (const auto protocol :
       {proto::Protocol::kAppDriven, proto::Protocol::kChandyLamport}) {
    const auto b =
        perf::waste_breakdown(perf::params_for(protocol, 128));
    EXPECT_NEAR(b.useful + b.overhead + b.rollback, 1.0, 1e-12);
    EXPECT_GT(b.useful, 0.5);
    EXPECT_GT(b.overhead, 0.0);
    EXPECT_GE(b.rollback, 0.0);
  }
}

TEST(WasteBreakdown, CoordinationShowsUpAsOverhead) {
  const auto app = perf::waste_breakdown(
      perf::params_for(proto::Protocol::kAppDriven, 256));
  const auto cl = perf::waste_breakdown(
      perf::params_for(proto::Protocol::kChandyLamport, 256));
  EXPECT_GT(cl.overhead, app.overhead);
  EXPECT_LT(cl.useful, app.useful);
}

TEST(WasteBreakdown, RollbackGrowsWithFailureRate) {
  perf::ModelParams low = perf::params_for(proto::Protocol::kAppDriven, 8);
  perf::ModelParams high = low;
  high.lambda = 1e-3;
  EXPECT_GT(perf::waste_breakdown(high).rollback,
            perf::waste_breakdown(low).rollback);
}

TEST(IntervalChain, MatchesFigure7Shape) {
  ModelParams p;
  const auto chain = perf::interval_chain(p);
  EXPECT_EQ(chain.state_count(), 3);
  EXPECT_FALSE(chain.is_absorbing(0));  // i
  EXPECT_FALSE(chain.is_absorbing(1));  // R_i
  EXPECT_TRUE(chain.is_absorbing(2));   // i+1
}

}  // namespace
