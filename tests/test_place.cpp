// Unit tests for Phases I and III: interval computation, static insertion,
// equalization, Condition-1 checking (paper Figures 1/2/5/6), and
// Algorithm 3.2 repair.
#include <gtest/gtest.h>

#include "match/match.h"
#include "mp/parser.h"
#include "mp/printer.h"
#include "place/place.h"
#include "util/error.h"

namespace {

using namespace acfc;
using place::CheckResult;
using place::InsertOptions;
using place::RepairOptions;
using place::RepairPolicy;

constexpr const char* kJacobi2 = R"(
  program jacobi2 {
    for it in 0 .. 10 {
      compute 5.0;
      if (rank % 2 == 0) {
        checkpoint "even";
        send to rank + 1 tag 1;
        recv from rank + 1 tag 1;
      } else {
        send to rank - 1 tag 1;
        recv from rank - 1 tag 1;
        checkpoint "odd";
      }
    }
  })";

CheckResult check(const mp::Program& p) {
  const match::ExtendedCfg ext = match::build_extended_cfg(p);
  return place::check_condition1(ext);
}

// ---------------------------------------------------------------------------
// Phase I
// ---------------------------------------------------------------------------

TEST(PhaseI, OptimalIntervalYoungRule) {
  InsertOptions opts;
  opts.lambda = 2e-6;
  opts.checkpoint_overhead = 1.0;
  EXPECT_NEAR(place::optimal_interval(opts), 1000.0, 1e-9);
}

TEST(PhaseI, ExplicitIntervalWins) {
  InsertOptions opts;
  opts.target_interval = 42.0;
  EXPECT_DOUBLE_EQ(place::optimal_interval(opts), 42.0);
}

TEST(PhaseI, EstimatedCostSumsComputeAndMessages) {
  const mp::Program p = mp::parse(
      "program t { compute 2.0; send to 0; recv from 0; barrier; }");
  InsertOptions opts;
  opts.est_message_delay = 0.5;
  // 2.0 + 0.5 + 0.5 + 1.0 (barrier = 2×delay)
  EXPECT_DOUBLE_EQ(place::estimated_cost(p, opts), 4.0);
}

TEST(PhaseI, EstimatedCostTakesMaxOverArms) {
  const mp::Program p = mp::parse(
      "program t { if (rank == 0) { compute 1.0; } else { compute 5.0; } }");
  EXPECT_DOUBLE_EQ(place::estimated_cost(p), 5.0);
}

TEST(PhaseI, EstimatedCostMultipliesLoopTrips) {
  const mp::Program p = mp::parse("program t { loop 4 { compute 2.0; } }");
  EXPECT_DOUBLE_EQ(place::estimated_cost(p), 8.0);
}

TEST(PhaseI, InsertsAtIntervalBoundaries) {
  mp::Program p = mp::parse(
      "program t { compute 10.0; compute 10.0; compute 10.0; compute 10.0; }");
  InsertOptions opts;
  opts.target_interval = 20.0;
  const int inserted = place::insert_checkpoints(p, opts);
  EXPECT_EQ(inserted, 2);
  EXPECT_EQ(mp::checkpoint_count(p), 2);
  // Positions: after the 2nd and 4th compute.
  EXPECT_EQ(p.body.stmts[2]->kind(), mp::StmtKind::kCheckpoint);
  EXPECT_EQ(p.body.stmts[5]->kind(), mp::StmtKind::kCheckpoint);
}

TEST(PhaseI, HeavyLoopBodyGetsInternalCheckpoint) {
  mp::Program p = mp::parse("program t { loop 100 { compute 30.0; } }");
  InsertOptions opts;
  opts.target_interval = 20.0;
  const int inserted = place::insert_checkpoints(p, opts);
  EXPECT_GE(inserted, 1);
  // The checkpoint lives inside the loop body.
  const auto& loop = static_cast<const mp::LoopStmt&>(*p.body.stmts[0]);
  bool inside = false;
  mp::for_each_stmt(loop.body, [&](const mp::Stmt& s) {
    if (s.kind() == mp::StmtKind::kCheckpoint) inside = true;
  });
  EXPECT_TRUE(inside);
}

TEST(PhaseI, LightLoopTreatedAsAtomicCost) {
  mp::Program p = mp::parse(
      "program t { loop 10 { compute 1.0; } compute 1.0; }");
  InsertOptions opts;
  opts.target_interval = 10.5;
  place::insert_checkpoints(p, opts);
  // Checkpoint falls after the loop (accumulated 10.0 + 1.0 > 10.5),
  // never inside it.
  const auto& loop = static_cast<const mp::LoopStmt&>(*p.body.stmts[0]);
  bool inside = false;
  mp::for_each_stmt(loop.body, [&](const mp::Stmt& s) {
    if (s.kind() == mp::StmtKind::kCheckpoint) inside = true;
  });
  EXPECT_FALSE(inside);
  EXPECT_EQ(mp::checkpoint_count(p), 1);
}

TEST(PhaseI, InsertedProgramIsBalanced) {
  mp::Program p = mp::parse(R"(
    program t {
      compute 50.0;
      if (rank == 0) { compute 5.0; } else { compute 3.0; }
      compute 50.0;
    })");
  InsertOptions opts;
  opts.target_interval = 30.0;
  place::insert_checkpoints(p, opts);
  const auto g = cfg::build_cfg(p);
  EXPECT_FALSE(g.check_balance().has_value());
}

TEST(PhaseI, EqualizePadsSmallerArm) {
  mp::Program p = mp::parse(R"(
    program t {
      if (rank == 0) { checkpoint; checkpoint; } else { checkpoint; }
    })");
  const int added = place::equalize_checkpoints(p);
  EXPECT_EQ(added, 1);
  const auto g = cfg::build_cfg(p);
  EXPECT_FALSE(g.check_balance().has_value());
}

TEST(PhaseI, EqualizeHandlesNesting) {
  mp::Program p = mp::parse(R"(
    program t {
      if (rank == 0) {
        if (rank == 0) { checkpoint; } else { }
      } else { }
    })");
  const int added = place::equalize_checkpoints(p);
  // Inner else gets one, then outer else needs one too.
  EXPECT_EQ(added, 2);
  EXPECT_FALSE(cfg::build_cfg(p).check_balance().has_value());
}

TEST(PhaseI, EqualizeNoOpWhenBalanced) {
  mp::Program p = mp::parse(kJacobi2);
  EXPECT_EQ(place::equalize_checkpoints(p), 0);
}

// ---------------------------------------------------------------------------
// Phase III — Condition 1
// ---------------------------------------------------------------------------

TEST(Condition1, MisalignedJacobiViolates) {
  const mp::Program p = mp::parse(kJacobi2);
  const CheckResult result = check(p);
  EXPECT_FALSE(result.ok(RepairPolicy::kAlignedInstances));
  EXPECT_GE(result.hard_count(), 1);
}

TEST(Condition1, AlignedJacobiHasNoHardViolations) {
  const mp::Program p = mp::parse(R"(
    program jacobi1 {
      for it in 0 .. 10 {
        checkpoint;
        compute 5.0;
        if (rank % 2 == 0) {
          send to rank + 1 tag 1; recv from rank + 1 tag 1;
        } else {
          send to rank - 1 tag 1; recv from rank - 1 tag 1;
        }
      }
    })");
  const CheckResult result = check(p);
  EXPECT_TRUE(result.ok(RepairPolicy::kAlignedInstances));
  // ... but the loop-carried self-causality means strict mode objects.
  EXPECT_FALSE(result.ok(RepairPolicy::kStrict));
}

TEST(Condition1, Figure5StyleHardViolation) {
  // Figure 5: two parallel paths where path A checkpoints, then messages
  // path B before B's same-index checkpoint.
  const mp::Program p = mp::parse(R"(
    program fig5 {
      if (rank == 0) {
        checkpoint "A";
        send to 1 tag 1;
      } else {
        recv from 0 tag 1;
        checkpoint "B";
      }
    })");
  const CheckResult result = check(p);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_TRUE(result.violations[0].hard);
  EXPECT_EQ(result.violations[0].index, 1);
}

TEST(Condition1, Figure6StyleLoopCarriedViolation) {
  // Figure 6: B checkpoints then sends; A receives inside a loop whose
  // next iteration checkpoints. The violating path needs the back edge.
  const mp::Program p = mp::parse(R"(
    program fig6 {
      if (rank == 0) {
        checkpoint "B";
        send to 1 tag 1;
      } else {
        for it in 0 .. 5 {
          checkpoint "A";
          compute 1.0;
          recv from 0 tag 1;
        }
      }
    })");
  // Note: rank 1 receives 5 times but rank 0 sends once; for the static
  // analysis only the graph matters.
  const CheckResult result = check(p);
  ASSERT_FALSE(result.violations.empty());
  for (const auto& v : result.violations) EXPECT_FALSE(v.hard);
  EXPECT_TRUE(result.ok(RepairPolicy::kAlignedInstances));
  EXPECT_FALSE(result.ok(RepairPolicy::kStrict));
}

TEST(Condition1, NoCommunicationNoViolations) {
  const mp::Program p = mp::parse(R"(
    program quiet {
      loop 3 { compute 1.0; checkpoint; }
    })");
  EXPECT_TRUE(check(p).violations.empty());
}

TEST(Condition1, CollectiveBetweenMisalignedCheckpointsViolates) {
  // A barrier creates all-pairs causality; checkpoints straddling it on
  // different arms violate.
  const mp::Program p = mp::parse(R"(
    program coll {
      if (rank % 2 == 0) { checkpoint; barrier; }
      else { barrier; checkpoint; }
    })");
  const CheckResult result = check(p);
  EXPECT_GE(result.hard_count(), 1);
}

// ---------------------------------------------------------------------------
// Phase III — Algorithm 3.2 repair
// ---------------------------------------------------------------------------

TEST(Repair, FixesMisalignedJacobi) {
  mp::Program p = mp::parse(kJacobi2);
  const auto report = place::repair_placement(p);
  EXPECT_TRUE(report.success);
  EXPECT_GE(report.initial_hard, 1);
  EXPECT_GE(report.moves + report.merges + report.hoists, 1);
  // Re-check from scratch.
  const CheckResult after = check(p);
  EXPECT_TRUE(after.ok(RepairPolicy::kAlignedInstances));
  EXPECT_EQ(after.hard_count(), 0);
  // Checkpoint count is preserved or reduced (merges), never increased.
  EXPECT_LE(mp::checkpoint_count(p), 2);
  EXPECT_GE(mp::checkpoint_count(p), 1);
}

TEST(Repair, FixesFigure5) {
  mp::Program p = mp::parse(R"(
    program fig5 {
      if (rank == 0) { checkpoint "A"; send to 1 tag 1; }
      else { recv from 0 tag 1; checkpoint "B"; }
    })");
  const auto report = place::repair_placement(p);
  EXPECT_TRUE(report.success);
  EXPECT_EQ(check(p).hard_count(), 0);
}

TEST(Repair, StrictModeHoistsOutOfLoop) {
  mp::Program p = mp::parse(R"(
    program jacobi1 {
      for it in 0 .. 10 {
        checkpoint;
        compute 5.0;
        if (rank % 2 == 0) {
          send to rank + 1 tag 1; recv from rank + 1 tag 1;
        } else {
          send to rank - 1 tag 1; recv from rank - 1 tag 1;
        }
      }
    })");
  RepairOptions opts;
  opts.policy = RepairPolicy::kStrict;
  const auto report = place::repair_placement(p, opts);
  EXPECT_TRUE(report.success);
  EXPECT_GE(report.hoists, 1);
  // The checkpoint is now outside the loop: strict check passes.
  const CheckResult after = check(p);
  EXPECT_TRUE(after.ok(RepairPolicy::kStrict));
  // And the checkpoint is a top-level statement.
  EXPECT_EQ(p.body.stmts[0]->kind(), mp::StmtKind::kCheckpoint);
}

TEST(Repair, AlignedModeKeepsLoopCheckpoint) {
  mp::Program p = mp::parse(R"(
    program jacobi1 {
      for it in 0 .. 10 {
        checkpoint;
        if (rank % 2 == 0) {
          send to rank + 1 tag 1; recv from rank + 1 tag 1;
        } else {
          send to rank - 1 tag 1; recv from rank - 1 tag 1;
        }
      }
    })");
  const auto report = place::repair_placement(p);  // default aligned policy
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.moves + report.merges + report.hoists, 0);
  EXPECT_EQ(p.body.stmts[0]->kind(), mp::StmtKind::kLoop);  // untouched
}

TEST(Repair, NoOpOnSafeProgram) {
  mp::Program p = mp::parse(R"(
    program safe { checkpoint; send to (rank + 1) % nprocs tag 1;
                   recv from (rank - 1 + nprocs) % nprocs tag 1; })");
  const auto report = place::repair_placement(p);
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.moves + report.merges + report.hoists, 0);
}

TEST(Repair, ReportLogsMoves) {
  mp::Program p = mp::parse(kJacobi2);
  const auto report = place::repair_placement(p);
  EXPECT_TRUE(report.success);
  EXPECT_FALSE(report.log.empty());
  EXPECT_NE(report.log[0].find("S_1"), std::string::npos);
}

TEST(Repair, MergeHoistsBranchCheckpoints) {
  // Both arm checkpoints sit at arm start but the message still orders
  // them via a preceding exchange... construct a case where the target
  // reaches an arm boundary: recv before checkpoint in both arms.
  mp::Program p = mp::parse(R"(
    program merge {
      if (rank % 2 == 0) {
        checkpoint "a";
        send to rank + 1 tag 1;
        recv from rank + 1 tag 2;
      } else {
        recv from rank - 1 tag 1;
        send to rank - 1 tag 2;
        checkpoint "b";
      }
    })");
  const auto report = place::repair_placement(p);
  EXPECT_TRUE(report.success);
  EXPECT_EQ(check(p).hard_count(), 0);
}

TEST(Repair, AnalyzeAndPlaceFullPipeline) {
  // No checkpoints in the input: Phase I inserts, Phase III repairs.
  mp::Program p = mp::parse(R"(
    program pipeline {
      loop 3 {
        compute 50.0;
        if (rank % 2 == 0) {
          send to rank + 1 tag 1; recv from rank + 1 tag 1;
        } else {
          send to rank - 1 tag 1; recv from rank - 1 tag 1;
        }
        compute 50.0;
      }
    })");
  InsertOptions iopts;
  iopts.target_interval = 60.0;
  const auto report = place::analyze_and_place(p, iopts);
  EXPECT_TRUE(report.success);
  EXPECT_GE(mp::checkpoint_count(p), 1);
  EXPECT_EQ(check(p).hard_count(), 0);
}

TEST(Repair, PreservesCheckpointIdsOfMovedCheckpoints) {
  mp::Program p = mp::parse(kJacobi2);
  std::vector<int> before;
  mp::for_each_stmt(p, [&](const mp::Stmt& s) {
    if (const auto* c = dynamic_cast<const mp::CheckpointStmt*>(&s))
      before.push_back(c->ckpt_id);
  });
  place::repair_placement(p);
  std::vector<int> after;
  mp::for_each_stmt(p, [&](const mp::Stmt& s) {
    if (const auto* c = dynamic_cast<const mp::CheckpointStmt*>(&s))
      after.push_back(c->ckpt_id);
  });
  // Every surviving id was present before (no fresh ids minted by moves).
  for (int id : after)
    EXPECT_NE(std::find(before.begin(), before.end(), id), before.end());
}

}  // namespace
