// Unit tests for MiniMP predicates: evaluation with three-valued logic
// around irregular terms, ID-dependence, rendering, equality.
#include <gtest/gtest.h>

#include "mp/pred.h"

namespace {

using acfc::mp::CmpOp;
using acfc::mp::EvalCtx;
using acfc::mp::Expr;
using acfc::mp::IrregularRequest;
using acfc::mp::IrregularResolver;
using acfc::mp::Pred;
using acfc::mp::PredKind;

EvalCtx ctx(int rank, int nprocs) {
  EvalCtx c;
  c.rank = rank;
  c.nprocs = nprocs;
  return c;
}

TEST(Pred, AlwaysIsTrue) {
  EXPECT_EQ(Pred::always().eval(ctx(0, 1)), true);
  EXPECT_EQ(Pred().eval(ctx(0, 1)), true);
}

TEST(Pred, Comparisons) {
  const EvalCtx c = ctx(3, 8);
  EXPECT_EQ(Pred::eq(Expr::rank(), Expr::constant(3)).eval(c), true);
  EXPECT_EQ(Pred::ne(Expr::rank(), Expr::constant(3)).eval(c), false);
  EXPECT_EQ(Pred::lt(Expr::rank(), Expr::constant(4)).eval(c), true);
  EXPECT_EQ(Pred::le(Expr::rank(), Expr::constant(3)).eval(c), true);
  EXPECT_EQ(Pred::gt(Expr::rank(), Expr::constant(3)).eval(c), false);
  EXPECT_EQ(Pred::ge(Expr::rank(), Expr::constant(3)).eval(c), true);
}

TEST(Pred, EvenOddIdiom) {
  const Pred even =
      Pred::eq(Expr::rank() % Expr::constant(2), Expr::constant(0));
  EXPECT_EQ(even.eval(ctx(0, 4)), true);
  EXPECT_EQ(even.eval(ctx(1, 4)), false);
  EXPECT_EQ(even.eval(ctx(2, 4)), true);
}

TEST(Pred, BooleanConnectives) {
  const Pred p = Pred::gt(Expr::rank(), Expr::constant(0)) &&
                 Pred::lt(Expr::rank(), Expr::constant(3));
  EXPECT_EQ(p.eval(ctx(0, 4)), false);
  EXPECT_EQ(p.eval(ctx(1, 4)), true);
  EXPECT_EQ(p.eval(ctx(3, 4)), false);

  const Pred q = Pred::eq(Expr::rank(), Expr::constant(0)) ||
                 Pred::eq(Expr::rank(), Expr::constant(3));
  EXPECT_EQ(q.eval(ctx(0, 4)), true);
  EXPECT_EQ(q.eval(ctx(2, 4)), false);

  EXPECT_EQ((!q).eval(ctx(2, 4)), true);
}

TEST(Pred, IrregularWithoutResolverIsUnknown) {
  EXPECT_FALSE(Pred::irregular(1).eval(ctx(0, 4)).has_value());
}

TEST(Pred, IrregularWithResolver) {
  IrregularResolver resolver = [](const IrregularRequest& req) {
    return req.rank % 2;
  };
  EvalCtx c = ctx(1, 4);
  c.resolver = &resolver;
  EXPECT_EQ(Pred::irregular(1).eval(c), true);
}

TEST(Pred, ThreeValuedAndShortCircuits) {
  // false && unknown == false; true && unknown == unknown.
  const Pred def_false = Pred::eq(Expr::constant(0), Expr::constant(1));
  const Pred def_true = Pred::always();
  const Pred unknown = Pred::irregular(9);
  EXPECT_EQ((def_false && unknown).eval(ctx(0, 1)), false);
  EXPECT_EQ((unknown && def_false).eval(ctx(0, 1)), false);
  EXPECT_FALSE((def_true && unknown).eval(ctx(0, 1)).has_value());
}

TEST(Pred, ThreeValuedOrShortCircuits) {
  const Pred def_true = Pred::always();
  const Pred unknown = Pred::irregular(9);
  EXPECT_EQ((def_true || unknown).eval(ctx(0, 1)), true);
  EXPECT_EQ((unknown || def_true).eval(ctx(0, 1)), true);
  const Pred def_false = Pred::eq(Expr::constant(0), Expr::constant(1));
  EXPECT_FALSE((def_false || unknown).eval(ctx(0, 1)).has_value());
}

TEST(Pred, UnknownComparisonPropagates) {
  EXPECT_FALSE(
      Pred::eq(Expr::irregular(1), Expr::constant(0)).eval(ctx(0, 1)));
  EXPECT_FALSE((!Pred::irregular(1)).eval(ctx(0, 1)).has_value());
}

TEST(Pred, DependsOnRank) {
  EXPECT_TRUE(Pred::eq(Expr::rank(), Expr::constant(0)).depends_on_rank());
  EXPECT_FALSE(
      Pred::eq(Expr::nprocs(), Expr::constant(4)).depends_on_rank());
  EXPECT_FALSE(Pred::irregular(1).depends_on_rank());
  EXPECT_TRUE((Pred::irregular(1) &&
               Pred::lt(Expr::rank(), Expr::constant(2)))
                  .depends_on_rank());
}

TEST(Pred, HasIrregular) {
  EXPECT_TRUE(Pred::irregular(1).has_irregular());
  EXPECT_TRUE(
      Pred::eq(Expr::irregular(2), Expr::constant(0)).has_irregular());
  EXPECT_FALSE(Pred::eq(Expr::rank(), Expr::constant(0)).has_irregular());
}

TEST(Pred, StrRendering) {
  EXPECT_EQ(Pred::always().str(), "true");
  EXPECT_EQ(Pred::eq(Expr::rank(), Expr::constant(0)).str(), "rank == 0");
  const Pred p = Pred::gt(Expr::rank(), Expr::constant(0)) &&
                 Pred::lt(Expr::rank(), Expr::constant(3));
  EXPECT_EQ(p.str(), "(rank > 0 && rank < 3)");
  EXPECT_EQ((!Pred::always()).str(), "!(true)");
}

TEST(Pred, StructuralEquality) {
  const Pred a = Pred::eq(Expr::rank(), Expr::constant(0));
  const Pred b = Pred::eq(Expr::rank(), Expr::constant(0));
  const Pred c = Pred::ne(Expr::rank(), Expr::constant(0));
  EXPECT_TRUE(a.equals(b));
  EXPECT_FALSE(a.equals(c));
  EXPECT_TRUE((a && c).equals(b && c));
  EXPECT_FALSE((a && c).equals(a || c));
}

TEST(Pred, Accessors) {
  const Pred p = Pred::lt(Expr::rank(), Expr::constant(4));
  EXPECT_EQ(p.kind(), PredKind::kCmp);
  EXPECT_EQ(p.cmp_op(), CmpOp::kLt);
  EXPECT_TRUE(p.cmp_lhs().equals(Expr::rank()));
  EXPECT_TRUE(p.cmp_rhs().equals(Expr::constant(4)));
  const Pred n = !p;
  EXPECT_EQ(n.kind(), PredKind::kNot);
  EXPECT_TRUE(n.child().equals(p));
}

}  // namespace
