// Integration tests over the shipped example programs
// (examples/programs/*.mp): they parse, survive the offline pipeline, run
// to completion across world sizes, and — after repair — have only
// consistent straight cuts. This doubles as an end-to-end test of
// mp::parse_file.
#include <gtest/gtest.h>

#include <string>

#include "mp/parser.h"
#include "mp/printer.h"
#include "place/place.h"
#include "sim/engine.h"
#include "trace/analysis.h"

namespace {

using namespace acfc;

std::string program_path(const std::string& name) {
  return std::string(ACFC_PROGRAMS_DIR) + "/" + name;
}

class ExamplePrograms : public ::testing::TestWithParam<const char*> {};

TEST_P(ExamplePrograms, ParsesAndRoundTrips) {
  const mp::Program p = mp::parse_file(program_path(GetParam()));
  EXPECT_GT(p.stmt_count(), 0);
  const mp::Program q = mp::parse(mp::print(p));
  EXPECT_EQ(q.stmt_count(), p.stmt_count());
}

TEST_P(ExamplePrograms, PipelineRepairsAndRunsSafely) {
  mp::Program program = mp::parse_file(program_path(GetParam()));
  const auto report = place::repair_placement(program);
  ASSERT_TRUE(report.success) << GetParam();
  for (const int nprocs : {2, 4, 5}) {
    const auto result = sim::simulate(program, nprocs, 3);
    ASSERT_TRUE(result.trace.completed)
        << GetParam() << " n=" << nprocs;
    for (const auto& cut : trace::all_straight_cuts(result.trace))
      EXPECT_TRUE(trace::analyze_cut(result.trace, cut).consistent)
          << GetParam() << " n=" << nprocs;
    EXPECT_EQ(result.stats.control_messages, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(All, ExamplePrograms,
                         ::testing::Values("jacobi_aligned.mp",
                                           "jacobi_misaligned.mp",
                                           "stencil_2phase.mp",
                                           "master_worker.mp",
                                           "pipeline.mp"));

TEST(ExampleProgramsMisc, MisalignedJacobiIsUnsafeBeforeRepair) {
  const mp::Program p =
      mp::parse_file(program_path("jacobi_misaligned.mp"));
  const auto result = sim::simulate(p, 4, 1);
  ASSERT_TRUE(result.trace.completed);
  int bad = 0;
  for (const auto& cut : trace::all_straight_cuts(result.trace))
    bad += trace::analyze_cut(result.trace, cut).consistent ? 0 : 1;
  EXPECT_GT(bad, 0);
}

TEST(ExampleProgramsMisc, AlignedJacobiNeedsNoRepair) {
  mp::Program p = mp::parse_file(program_path("jacobi_aligned.mp"));
  const auto report = place::repair_placement(p);
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.moves + report.merges + report.hoists, 0);
}

}  // namespace
