// Unit tests for the protocol drivers: message accounting against the
// paper's closed forms, snapshot consistency per protocol, forced
// checkpoints in CIC, and the uncoordinated domino effect.
#include <gtest/gtest.h>

#include "mp/parser.h"
#include "proto/protocols.h"
#include "trace/analysis.h"

namespace {

using namespace acfc;
using proto::Protocol;
using proto::ProtocolOptions;
using proto::run_protocol;

// A long-running compute+exchange workload without checkpoint statements
// (timer-driven protocols provide them).
mp::Program workload(int iters) {
  return mp::parse(
      "program work {\n"
      "  loop " + std::to_string(iters) + " {\n"
      "    compute 10.0;\n"
      "    send to (rank + 1) % nprocs tag 1;\n"
      "    recv from (rank - 1 + nprocs) % nprocs tag 1;\n"
      "  }\n"
      "}\n");
}

sim::SimOptions sim_opts(int nprocs) {
  sim::SimOptions opts;
  opts.nprocs = nprocs;
  return opts;
}

ProtocolOptions proto_opts(double interval) {
  ProtocolOptions opts;
  opts.interval = interval;
  return opts;
}

TEST(ProtoNames, AllDistinct) {
  EXPECT_STREQ(proto::protocol_name(Protocol::kAppDriven), "appl-driven");
  EXPECT_STREQ(proto::protocol_name(Protocol::kSyncAndStop), "SaS");
  EXPECT_STREQ(proto::protocol_name(Protocol::kChandyLamport), "C-L");
  EXPECT_STREQ(proto::protocol_name(Protocol::kCic), "CIC");
  EXPECT_STREQ(proto::protocol_name(Protocol::kUncoordinated), "uncoord");
}

TEST(ProtoAppDriven, ZeroControlMessages) {
  const mp::Program p = mp::parse(R"(
    program app {
      loop 5 {
        checkpoint;
        compute 10.0;
        send to (rank + 1) % nprocs tag 1;
        recv from (rank - 1 + nprocs) % nprocs tag 1;
      }
    })");
  const auto r = run_protocol(p, Protocol::kAppDriven, sim_opts(4));
  EXPECT_TRUE(r.sim.trace.completed);
  EXPECT_EQ(r.sim.stats.control_messages, 0);
  EXPECT_EQ(r.sim.stats.forced_checkpoints, 0);
  EXPECT_EQ(r.sim.stats.statement_checkpoints, 4 * 5);
  EXPECT_DOUBLE_EQ(r.sim.stats.paused_time, 0.0);
}

TEST(ProtoSaS, MessageCountMatchesClosedForm) {
  for (const int n : {2, 4, 8}) {
    const mp::Program p = workload(6);
    const auto r = run_protocol(p, Protocol::kSyncAndStop, sim_opts(n),
                                proto_opts(25.0));
    EXPECT_TRUE(r.sim.trace.completed);
    ASSERT_GE(r.rounds_completed, 1) << "n=" << n;
    EXPECT_EQ(r.sim.stats.control_messages,
              r.rounds_completed * proto::expected_control_messages(
                                       Protocol::kSyncAndStop, n))
        << "n=" << n;
    // Every round checkpoints every process.
    EXPECT_EQ(r.sim.stats.forced_checkpoints, r.rounds_completed * n);
  }
}

TEST(ProtoSaS, PausesProcesses) {
  const auto r = run_protocol(workload(6), Protocol::kSyncAndStop,
                              sim_opts(4), proto_opts(25.0));
  EXPECT_GT(r.sim.stats.paused_time, 0.0);
}

TEST(ProtoSaS, SnapshotsAreConsistent) {
  const auto r = run_protocol(workload(8), Protocol::kSyncAndStop,
                              sim_opts(4), proto_opts(30.0));
  ASSERT_GE(r.rounds_completed, 2);
  // The k-th forced checkpoint of each process forms the k-th round's
  // snapshot; each must be a recovery line.
  const auto& trace = r.sim.trace;
  for (int round = 0; round < r.rounds_completed; ++round) {
    trace::Cut cut;
    cut.member.assign(static_cast<size_t>(trace.nprocs), -1);
    std::vector<int> seen(static_cast<size_t>(trace.nprocs), 0);
    for (size_t i = 0; i < trace.checkpoints.size(); ++i) {
      const auto& c = trace.checkpoints[i];
      if (seen[static_cast<size_t>(c.proc)]++ == round)
        cut.member[static_cast<size_t>(c.proc)] = static_cast<int>(i);
    }
    bool complete = true;
    for (const int m : cut.member) complete &= m >= 0;
    if (!complete) continue;
    EXPECT_TRUE(trace::analyze_cut(trace, cut).consistent)
        << "round " << round;
  }
}

TEST(ProtoCL, MessageCountMatchesClosedForm) {
  for (const int n : {2, 4, 6}) {
    const auto r = run_protocol(workload(6), Protocol::kChandyLamport,
                                sim_opts(n), proto_opts(25.0));
    EXPECT_TRUE(r.sim.trace.completed);
    ASSERT_GE(r.rounds_completed, 1) << "n=" << n;
    EXPECT_EQ(r.sim.stats.control_messages,
              r.rounds_completed * proto::expected_control_messages(
                                       Protocol::kChandyLamport, n))
        << "n=" << n;
    EXPECT_EQ(r.sim.stats.forced_checkpoints, r.rounds_completed * n);
  }
}

TEST(ProtoCL, NeverPauses) {
  const auto r = run_protocol(workload(6), Protocol::kChandyLamport,
                              sim_opts(4), proto_opts(25.0));
  EXPECT_DOUBLE_EQ(r.sim.stats.paused_time, 0.0);
}

TEST(ProtoCL, SnapshotsPlusChannelStateAreConsistent) {
  const auto r = run_protocol(workload(8), Protocol::kChandyLamport,
                              sim_opts(4), proto_opts(30.0));
  ASSERT_GE(r.rounds_completed, 1);
  const auto& trace = r.sim.trace;
  // Round-k snapshots: analyze the cut; C-L guarantees no orphans (any
  // in-transit messages were logged as channel state).
  for (int round = 0; round < r.rounds_completed; ++round) {
    trace::Cut cut;
    cut.member.assign(static_cast<size_t>(trace.nprocs), -1);
    std::vector<int> seen(static_cast<size_t>(trace.nprocs), 0);
    for (size_t i = 0; i < trace.checkpoints.size(); ++i) {
      const auto& c = trace.checkpoints[i];
      if (seen[static_cast<size_t>(c.proc)]++ == round)
        cut.member[static_cast<size_t>(c.proc)] = static_cast<int>(i);
    }
    bool complete = true;
    for (const int m : cut.member) complete &= m >= 0;
    if (!complete) continue;
    const auto a = trace::analyze_cut(trace, cut);
    EXPECT_TRUE(a.consistent) << "round " << round;
  }
}

TEST(ProtoCic, NoControlMessagesButPiggybacks) {
  const auto r =
      run_protocol(workload(6), Protocol::kCic, sim_opts(4), proto_opts(25.0));
  EXPECT_TRUE(r.sim.trace.completed);
  EXPECT_EQ(r.sim.stats.control_messages, 0);
  // Piggyback values present on app messages once checkpoints accumulate.
  bool nonzero_piggyback = false;
  for (const auto& m : r.sim.trace.messages)
    if (!m.control && m.piggyback > 0) nonzero_piggyback = true;
  EXPECT_TRUE(nonzero_piggyback);
}

TEST(ProtoCic, ForcedCheckpointsKeepIndexCutsConsistent) {
  // Stagger basic checkpoints across processes to provoke index skew.
  ProtocolOptions popts = proto_opts(20.0);
  popts.first_round_at = 5.0;
  auto sopts = sim_opts(4);
  sopts.compute_jitter = 0.5;  // desynchronize processes
  const auto r = run_protocol(workload(8), Protocol::kCic, sopts, popts);
  EXPECT_TRUE(r.sim.trace.completed);
  const auto& trace = r.sim.trace;
  // BCS invariant: the cut formed by each process's k-th checkpoint is
  // consistent for every k present on all processes.
  long min_count = 1'000'000;
  for (int p = 0; p < trace.nprocs; ++p)
    min_count = std::min(
        min_count, static_cast<long>(trace.checkpoints_of(p).size()));
  ASSERT_GE(min_count, 1);
  for (long k = 0; k < min_count; ++k) {
    trace::Cut cut;
    cut.member.assign(static_cast<size_t>(trace.nprocs), -1);
    std::vector<long> seen(static_cast<size_t>(trace.nprocs), 0);
    for (size_t i = 0; i < trace.checkpoints.size(); ++i) {
      const auto& c = trace.checkpoints[i];
      if (seen[static_cast<size_t>(c.proc)]++ == k)
        cut.member[static_cast<size_t>(c.proc)] = static_cast<int>(i);
    }
    EXPECT_TRUE(trace::analyze_cut(trace, cut).consistent) << "k=" << k;
  }
}

TEST(ProtoUncoordinated, ZeroRuntimeOverheadButRollback) {
  auto sopts = sim_opts(4);
  sopts.compute_jitter = 0.5;
  const auto r = run_protocol(workload(10), Protocol::kUncoordinated, sopts,
                              proto_opts(15.0));
  EXPECT_TRUE(r.sim.trace.completed);
  EXPECT_EQ(r.sim.stats.control_messages, 0);
  EXPECT_DOUBLE_EQ(r.sim.stats.paused_time, 0.0);
  // Recovery at an arbitrary time typically needs demotion below the
  // latest checkpoints (rollback propagation) — measure it.
  const auto& trace = r.sim.trace;
  int total_rollbacks = 0;
  for (int i = 1; i <= 10; ++i) {
    const auto line =
        trace::max_recovery_line(trace, trace.end_time * i / 10.0);
    EXPECT_TRUE(line.consistent);
    for (const int rb : line.rollbacks) total_rollbacks += rb;
  }
  // With a communicating workload and staggered checkpoints, some failure
  // times must force rollback propagation.
  EXPECT_GT(total_rollbacks, 0);
}

TEST(ProtoExpectedMessages, ClosedForms) {
  EXPECT_EQ(proto::expected_control_messages(Protocol::kSyncAndStop, 8),
            35);
  EXPECT_EQ(proto::expected_control_messages(Protocol::kChandyLamport, 8),
            112);
  EXPECT_EQ(proto::expected_control_messages(Protocol::kAppDriven, 8), 0);
  EXPECT_EQ(proto::expected_control_messages(Protocol::kUncoordinated, 8),
            0);
}

}  // namespace
