// The end-to-end recovery oracle (sim/recovery.h) exercised as a property
// test — the runnable form of the paper's recovery claim: after Phase III
// placement, a failed execution rolls back to a consistent cut, replays
// the in-transit messages, and converges to the exact failure-free
// execution.
//
//  * RecoveryProperty: ≥100 generated program × seed × fault-plan
//    combinations (misaligned placements included, repaired first); every
//    combination must restore consistent cuts, end with zero orphan
//    messages, and replay bit-identically to the failure-free reference.
//  * FaultPlanTriggers: the after-checkpoint / after-events / at-time
//    triggers fire where they claim to.
//  * ProtocolRecovery: the same oracle through every protocol baseline
//    (sync-and-stop, Chandy–Lamport, Koo–Toueg, CIC, uncoordinated).
//  * StoreBackedRecovery: restore costs derived from a StableStore's
//    incremental chains shift the per-process restart times.
#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "mp/generate.h"
#include "mp/parser.h"
#include "mp/printer.h"
#include "place/place.h"
#include "proto/protocols.h"
#include "sim/montecarlo.h"
#include "sim/recovery.h"
#include "store/store.h"
#include "trace/analysis.h"

namespace {

using namespace acfc;

constexpr const char* kRing = R"(
  program ring {
    loop 6 {
      compute 3.0;
      checkpoint;
      send to (rank + 1) % nprocs tag 1;
      recv from (rank - 1 + nprocs) % nprocs tag 1;
    }
  })";

/// A checkpoint-free ring for the protocol baselines (their drivers
/// provide all checkpoints).
constexpr const char* kBareRing = R"(
  program bare_ring {
    loop 6 {
      compute 3.0;
      send to (rank + 1) % nprocs tag 1;
      recv from (rank - 1 + nprocs) % nprocs tag 1;
    }
  })";

// ---------------------------------------------------------------------------
// The ≥100-combination property sweep
// ---------------------------------------------------------------------------

/// One parameter = (generator seed, misaligned placement); each test runs
/// two independent fault plans, so 26 seeds × 2 alignments × 2 plans gives
/// 104 program × seed × fault-plan combinations.
class RecoveryProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(RecoveryProperty, RollbackReplaysToFailureFreeExecution) {
  const auto [seed, misalign] = GetParam();
  mp::GenerateOptions gopts;
  gopts.seed = seed;
  gopts.segments = 6;
  gopts.misalign_checkpoints = misalign;
  gopts.allow_collectives = false;
  gopts.allow_irregular = false;
  mp::Program program = mp::generate_program(gopts);
  const auto report = place::repair_placement(program);
  ASSERT_TRUE(report.success) << mp::print(program);

  sim::SimOptions base;
  base.nprocs = 4;
  base.seed = seed;
  base.recovery_overhead = 0.5;

  // Scale at-time triggers to this program's actual makespan.
  const auto probe = sim::simulate(program, base.nprocs, base.seed);
  ASSERT_TRUE(probe.trace.completed) << mp::print(program);

  for (int variant = 0; variant < 2; ++variant) {
    SCOPED_TRACE("fault plan variant " + std::to_string(variant));
    const sim::FaultPlan plan = sim::random_fault_plan(
        seed * 131 + static_cast<std::uint64_t>(variant), base.nprocs,
        probe.trace.end_time * 0.9);
    const sim::OracleReport oracle =
        sim::check_recovery(program, base, plan);
    EXPECT_TRUE(oracle.ok) << oracle.failure << "\n" << mp::print(program);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RecoveryProperty,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 27),
                       ::testing::Bool()));

TEST(RecoveryProperty, SweepIsNotVacuous) {
  // The parameterized sweep re-run in aggregate: a healthy share of the
  // random fault plans must actually trigger rollbacks (a fault landing
  // after completion is a silent no-op, so this guards against the whole
  // sweep degenerating into failure-free runs).
  long rollbacks = 0;
  long combos = 0;
  for (std::uint64_t seed = 1; seed <= 26; ++seed) {
    for (const bool misalign : {false, true}) {
      mp::GenerateOptions gopts;
      gopts.seed = seed;
      gopts.segments = 6;
      gopts.misalign_checkpoints = misalign;
      gopts.allow_collectives = false;
      gopts.allow_irregular = false;
      mp::Program program = mp::generate_program(gopts);
      ASSERT_TRUE(place::repair_placement(program).success);
      sim::SimOptions base;
      base.nprocs = 4;
      base.seed = seed;
      base.recovery_overhead = 0.5;
      const auto probe = sim::simulate(program, base.nprocs, base.seed);
      for (int variant = 0; variant < 2; ++variant) {
        ++combos;
        const sim::FaultPlan plan = sim::random_fault_plan(
            seed * 131 + static_cast<std::uint64_t>(variant), base.nprocs,
            probe.trace.end_time * 0.9);
        const sim::OracleReport oracle =
            sim::check_recovery(program, base, plan);
        ASSERT_TRUE(oracle.ok) << oracle.failure;
        rollbacks += oracle.restarts;
      }
    }
  }
  EXPECT_GE(combos, 100);
  EXPECT_GE(rollbacks, combos / 4);
}

// ---------------------------------------------------------------------------
// Fault-plan triggers
// ---------------------------------------------------------------------------

TEST(FaultPlanTriggers, AtTimeFiresAndRecords) {
  const mp::Program program = mp::parse(kRing);
  sim::SimOptions opts;
  opts.nprocs = 4;
  opts.recovery_overhead = 1.0;
  opts.fault_plan.faults = {sim::FaultPlan::at_time(2, 10.0)};
  sim::Engine engine(program, opts);
  const auto result = engine.run();
  ASSERT_TRUE(result.trace.completed);
  ASSERT_EQ(result.recoveries.size(), 1u);
  const sim::RecoveryRec& rec = result.recoveries[0];
  EXPECT_EQ(rec.failed_proc, 2);
  EXPECT_DOUBLE_EQ(rec.fail_time, 10.0);
  EXPECT_GE(rec.resume_time, rec.fail_time + 1.0);
  EXPECT_GE(rec.lost_work, 0.0);
  EXPECT_EQ(rec.rollbacks.size(), 4u);
  EXPECT_TRUE(trace::analyze_cut(result.trace, rec.cut).consistent);
}

TEST(FaultPlanTriggers, AfterCheckpointFiresAtTheCountedCheckpoint) {
  const mp::Program program = mp::parse(kRing);
  sim::SimOptions opts;
  opts.nprocs = 4;
  opts.recovery_overhead = 0.5;
  opts.fault_plan.faults = {sim::FaultPlan::after_checkpoint(1, 3)};
  sim::Engine engine(program, opts);
  const auto result = engine.run();
  ASSERT_TRUE(result.trace.completed);
  ASSERT_EQ(result.recoveries.size(), 1u);
  EXPECT_EQ(result.recoveries[0].failed_proc, 1);
  // The third checkpoint of process 1 must be committed by the fail time.
  int committed = 0;
  for (const auto& c : result.trace.checkpoints)
    if (c.proc == 1 && c.t_commit <= result.recoveries[0].fail_time)
      ++committed;
  EXPECT_GE(committed, 3);
}

TEST(FaultPlanTriggers, AfterEventsFiresOnceEventCountReached) {
  const mp::Program program = mp::parse(kRing);
  sim::SimOptions opts;
  opts.nprocs = 4;
  opts.recovery_overhead = 0.5;
  opts.fault_plan.faults = {sim::FaultPlan::after_events(0, 40)};
  sim::Engine engine(program, opts);
  const auto result = engine.run();
  ASSERT_TRUE(result.trace.completed);
  ASSERT_EQ(result.recoveries.size(), 1u);
  EXPECT_EQ(result.recoveries[0].failed_proc, 0);
  EXPECT_EQ(result.stats.restarts, 1);
}

TEST(FaultPlanTriggers, OverlappingFaultsAllRecover) {
  const mp::Program program = mp::parse(kRing);
  sim::SimOptions opts;
  opts.nprocs = 4;
  opts.recovery_overhead = 0.5;
  opts.fault_plan.faults = {sim::FaultPlan::at_time(0, 8.0),
                            sim::FaultPlan::at_time(3, 16.0),
                            sim::FaultPlan::after_checkpoint(2, 4)};
  const sim::OracleReport oracle =
      sim::check_recovery(program, opts, opts.fault_plan);
  EXPECT_TRUE(oracle.ok) << oracle.failure;
  EXPECT_GE(oracle.restarts, 2);
}

TEST(FaultPlanTriggers, LegacyFailuresStillWork) {
  const mp::Program program = mp::parse(kRing);
  sim::SimOptions opts;
  opts.nprocs = 4;
  opts.recovery_overhead = 0.5;
  opts.failures = {{1, 12.0}};
  sim::Engine engine(program, opts);
  const auto result = engine.run();
  ASSERT_TRUE(result.trace.completed);
  EXPECT_EQ(result.stats.restarts, 1);
  ASSERT_EQ(result.recoveries.size(), 1u);
  EXPECT_EQ(result.recoveries[0].failed_proc, 1);
}

// ---------------------------------------------------------------------------
// Recovery metrics
// ---------------------------------------------------------------------------

TEST(RecoveryMetrics, AggregatesAcrossRuns) {
  const mp::Program program = mp::parse(kRing);
  std::vector<sim::SimOptions> configs;
  for (int i = 0; i < 4; ++i) {
    sim::SimOptions opts;
    opts.nprocs = 4;
    opts.seed = sim::run_seed(11, i);
    opts.recovery_overhead = 1.0;
    opts.fault_plan.faults = {sim::FaultPlan::at_time(i % 4, 9.0 + i)};
    configs.push_back(opts);
  }
  std::vector<sim::SimResult> runs;
  for (const auto& config : configs) {
    sim::Engine engine(program, config);
    runs.push_back(engine.run());
  }
  const sim::RecoveryMetrics metrics = sim::recovery_metrics(runs);
  EXPECT_EQ(metrics.runs, 4);
  EXPECT_EQ(metrics.completed, 4);
  EXPECT_EQ(metrics.failures, 4);
  EXPECT_GE(metrics.mean_recovery_latency, 1.0);  // ≥ recovery_overhead
  EXPECT_GE(metrics.mean_lost_work, 0.0);
  EXPECT_GE(metrics.mean_rollback_distance, 0.0);
}

TEST(RecoveryMetrics, RandomFaultPlansAreDeterministic) {
  const sim::FaultPlan a = sim::random_fault_plan(7, 4, 100.0);
  const sim::FaultPlan b = sim::random_fault_plan(7, 4, 100.0);
  ASSERT_EQ(a.faults.size(), b.faults.size());
  EXPECT_FALSE(a.empty());
  for (size_t i = 0; i < a.faults.size(); ++i) {
    EXPECT_EQ(a.faults[i].proc, b.faults[i].proc);
    EXPECT_EQ(a.faults[i].trigger, b.faults[i].trigger);
    EXPECT_EQ(a.faults[i].time, b.faults[i].time);
    EXPECT_EQ(a.faults[i].count, b.faults[i].count);
    EXPECT_GE(a.faults[i].proc, 0);
    EXPECT_LT(a.faults[i].proc, 4);
  }
}

TEST(RecoveryMetrics, ExtendedFaultPlanDrawsAreAppendOnly) {
  // The partition/stall draws happen strictly AFTER the crash draws, so
  // enabling them must leave every (seed, max_faults) crash schedule
  // bit-identical to what crash-only callers have always received.
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL, 20260808ULL}) {
    const sim::FaultPlan base = sim::random_fault_plan(seed, 4, 100.0);
    const sim::FaultPlan ext =
        sim::random_fault_plan(seed, 4, 100.0, 2, 2, 2);
    ASSERT_EQ(ext.faults.size(), base.faults.size()) << "seed=" << seed;
    for (size_t i = 0; i < base.faults.size(); ++i) {
      EXPECT_EQ(ext.faults[i].proc, base.faults[i].proc);
      EXPECT_EQ(ext.faults[i].trigger, base.faults[i].trigger);
      EXPECT_EQ(ext.faults[i].time, base.faults[i].time);
      EXPECT_EQ(ext.faults[i].count, base.faults[i].count);
    }
    // The extended draws are themselves deterministic and well-formed.
    const sim::FaultPlan again =
        sim::random_fault_plan(seed, 4, 100.0, 2, 2, 2);
    ASSERT_EQ(again.partitions.size(), ext.partitions.size());
    ASSERT_EQ(again.stalls.size(), ext.stalls.size());
    for (size_t i = 0; i < ext.partitions.size(); ++i) {
      const sim::PartitionSpec& p = ext.partitions[i];
      EXPECT_EQ(again.partitions[i].group, p.group);
      EXPECT_EQ(again.partitions[i].start, p.start);
      EXPECT_EQ(again.partitions[i].heal, p.heal);
      EXPECT_EQ(again.partitions[i].symmetric, p.symmetric);
      ASSERT_EQ(p.group.size(), 1u);
      EXPECT_GE(p.group[0], 0);
      EXPECT_LT(p.group[0], 4);
      EXPECT_GT(p.heal, p.start);
      EXPECT_LE(p.heal, 100.0);
    }
    for (size_t i = 0; i < ext.stalls.size(); ++i) {
      const sim::StallSpec& s = ext.stalls[i];
      EXPECT_EQ(again.stalls[i].proc, s.proc);
      EXPECT_EQ(again.stalls[i].start, s.start);
      EXPECT_EQ(again.stalls[i].duration, s.duration);
      EXPECT_GE(s.proc, 0);
      EXPECT_LT(s.proc, 4);
      EXPECT_GT(s.duration, 0.0);
    }
  }
}

TEST(RecoveryMetrics, ExtendedFaultPlanMatchesTheGoldenPlan) {
  // Pinned draws for one seed: any reordering of the crash or window draw
  // streams — even one that stays self-consistent — shows up here.
  const sim::FaultPlan plan = sim::random_fault_plan(7, 4, 100.0, 2, 2, 2);
  ASSERT_EQ(plan.faults.size(), 1u);
  EXPECT_EQ(plan.faults[0].proc, 3);
  EXPECT_EQ(plan.faults[0].trigger, sim::FaultSpec::Trigger::kAfterEvents);
  EXPECT_EQ(plan.faults[0].count, 223);
  ASSERT_EQ(plan.partitions.size(), 2u);
  EXPECT_EQ(plan.partitions[0].group, std::vector<int>{1});
  EXPECT_DOUBLE_EQ(plan.partitions[0].start, 22.237184497653029);
  EXPECT_DOUBLE_EQ(plan.partitions[0].heal, 38.320079873930496);
  EXPECT_FALSE(plan.partitions[0].symmetric);
  EXPECT_EQ(plan.partitions[1].group, std::vector<int>{2});
  EXPECT_DOUBLE_EQ(plan.partitions[1].start, 68.476093153220972);
  EXPECT_DOUBLE_EQ(plan.partitions[1].heal, 82.850706698335713);
  EXPECT_TRUE(plan.partitions[1].symmetric);
  EXPECT_TRUE(plan.stalls.empty());
}

// ---------------------------------------------------------------------------
// Protocol baselines under failure injection
// ---------------------------------------------------------------------------

class ProtocolRecovery : public ::testing::TestWithParam<proto::Protocol> {};

TEST_P(ProtocolRecovery, OracleHoldsUnderEveryBaseline) {
  const proto::Protocol protocol = GetParam();
  const mp::Program program = mp::parse(
      protocol == proto::Protocol::kAppDriven ? kRing : kBareRing);

  sim::SimOptions opts;
  opts.nprocs = 4;
  opts.recovery_overhead = 1.0;

  proto::ProtocolOptions popts;
  popts.interval = 8.0;  // several rounds inside the ~40 s makespan

  sim::FaultPlan plan;
  plan.faults = {sim::FaultPlan::at_time(1, 13.0)};

  const sim::OracleReport oracle =
      proto::check_protocol_recovery(program, protocol, opts, plan, popts);
  EXPECT_TRUE(oracle.ok) << proto::protocol_name(protocol) << ": "
                         << oracle.failure;
  EXPECT_GE(oracle.restarts, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Baselines, ProtocolRecovery,
    ::testing::Values(proto::Protocol::kAppDriven,
                      proto::Protocol::kSyncAndStop,
                      proto::Protocol::kChandyLamport,
                      proto::Protocol::kKooToueg, proto::Protocol::kCic,
                      proto::Protocol::kUncoordinated),
    [](const ::testing::TestParamInfo<proto::Protocol>& info) {
      std::string name = proto::protocol_name(info.param);
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

TEST(ProtocolRecovery, CoordinatedRollbackIsShallow) {
  // Under app-driven placement the recovery line is the latest checkpoints
  // (zero demotions) — the paper's coordinated-quality recovery claim.
  mp::Program program = mp::parse(kRing);
  sim::SimOptions opts;
  opts.nprocs = 4;
  opts.recovery_overhead = 1.0;
  opts.fault_plan.faults = {sim::FaultPlan::at_time(2, 12.0)};
  sim::Engine engine(program, opts);
  const auto result = engine.run();
  ASSERT_TRUE(result.trace.completed);
  ASSERT_EQ(result.recoveries.size(), 1u);
  for (const int demotions : result.recoveries[0].rollbacks)
    EXPECT_EQ(demotions, 0);
}

// ---------------------------------------------------------------------------
// Store-backed restore costs
// ---------------------------------------------------------------------------

TEST(StoreBackedRecovery, RestoreChainDelaysRestart) {
  const mp::Program program = mp::parse(kRing);

  store::StorageModel model;
  model.write_bandwidth = 1e6;  // slow store: visible (o, l) and restores
  model.read_bandwidth = 1e6;
  store::StableStore store(model, store::CheckpointMode::kIncremental, 4);

  sim::SimOptions opts;
  opts.nprocs = 4;
  opts.recovery_overhead = 1.0;
  opts.checkpoint_cost_fn =
      store::checkpoint_cost_fn(store, [](int) { return 500'000L; });
  opts.recovery_cost_fn = store::restore_cost_fn(store);
  opts.fault_plan.faults = {sim::FaultPlan::at_time(0, 15.0)};

  sim::Engine engine(program, opts);
  const auto result = engine.run();
  ASSERT_TRUE(result.trace.completed);
  ASSERT_EQ(result.recoveries.size(), 1u);
  const sim::RecoveryRec& rec = result.recoveries[0];
  // The restart is delayed past R by the store's restore chain. (The
  // store keeps accumulating records after recovery, so compare against a
  // lower bound, not the end-of-run chain.)
  double max_restore = 0.0;
  for (int p = 0; p < 4; ++p)
    max_restore = std::max(max_restore, store.restore_seconds(p));
  EXPECT_GT(max_restore, 0.0);
  EXPECT_GT(rec.resume_time, rec.fail_time + 1.0);
  EXPECT_TRUE(trace::analyze_cut(result.trace, rec.cut).consistent);
}

// ---------------------------------------------------------------------------
// Zero-orphan counters are exposed even failure-free
// ---------------------------------------------------------------------------

TEST(FinalCounters, BalancedOnCompletedRuns) {
  const mp::Program program = mp::parse(kRing);
  const auto result = sim::simulate(program, 4, 1);
  ASSERT_TRUE(result.trace.completed);
  ASSERT_EQ(result.final_sends.size(), 16u);
  ASSERT_EQ(result.final_recvs.size(), 16u);
  for (int s = 0; s < 4; ++s)
    for (int d = 0; d < 4; ++d)
      EXPECT_EQ(result.final_recvs[static_cast<size_t>(d) * 4 +
                                   static_cast<size_t>(s)],
                result.final_sends[static_cast<size_t>(s) * 4 +
                                   static_cast<size_t>(d)])
          << s << "→" << d;
  EXPECT_TRUE(result.recoveries.empty());
}

}  // namespace
