// Tests for the attribute-aware path-feasibility refinement: attribute
// combination, spurious-violation elimination (the master/worker loop
// case), preservation of real violations (soundness on the whole safety
// corpus), and its effect on strict-mode repair.
#include <gtest/gtest.h>

#include "attr/attr.h"
#include "match/match.h"
#include "mp/generate.h"
#include "mp/parser.h"
#include "mp/printer.h"
#include "place/place.h"
#include "sim/engine.h"
#include "trace/analysis.h"

namespace {

using namespace acfc;
using match::build_extended_cfg;
using mp::Expr;
using mp::Pred;

// ---------------------------------------------------------------------------
// combine_attributes
// ---------------------------------------------------------------------------

TEST(CombineAttr, MergesGuards) {
  attr::PathAttribute a, b;
  a.guards.emplace_back(Pred::eq(Expr::rank(), Expr::constant(0)), true);
  b.guards.emplace_back(Pred::gt(Expr::nprocs(), Expr::constant(2)), true);
  const auto c = attr::combine_attributes(a, b, 1);
  EXPECT_EQ(c.guards.size(), 2u);
  EXPECT_TRUE(attr::satisfiable(c));
}

TEST(CombineAttr, ContradictoryGuardsUnsatisfiable) {
  attr::PathAttribute a, b;
  a.guards.emplace_back(
      Pred::eq(Expr::rank() % Expr::constant(2), Expr::constant(0)), true);
  b.guards.emplace_back(
      Pred::eq(Expr::rank() % Expr::constant(2), Expr::constant(1)), true);
  EXPECT_FALSE(attr::satisfiable(attr::combine_attributes(a, b, 1)));
}

TEST(CombineAttr, LoopVariablesAreRenamedApart) {
  // Both attributes bind "w", but in different iterations; unification
  // would wrongly conclude the same value.
  attr::PathAttribute a, b;
  a.loops.push_back({"w", Expr::constant(0), Expr::constant(4)});
  a.guards.emplace_back(Pred::eq(Expr::loop_var("w"), Expr::constant(1)),
                        true);
  b.loops.push_back({"w", Expr::constant(0), Expr::constant(4)});
  b.guards.emplace_back(Pred::eq(Expr::loop_var("w"), Expr::constant(3)),
                        true);
  // w==1 ∧ w==3 would contradict if unified; renamed apart it must not.
  EXPECT_TRUE(attr::satisfiable(attr::combine_attributes(a, b, 1)));
}

TEST(CombineAttr, RenamedBoundsStayLinked) {
  // b's inner loop bound references b's outer variable; the rename must
  // rewrite the bound consistently.
  attr::PathAttribute a, b;
  b.loops.push_back({"i", Expr::constant(2), Expr::constant(3)});
  b.loops.push_back({"j", Expr::constant(0), Expr::loop_var("i")});
  b.guards.emplace_back(Pred::ge(Expr::loop_var("j"), Expr::constant(2)),
                        true);
  // j ∈ [0, i) with i = 2 ⇒ j ∈ {0, 1}: j >= 2 unsatisfiable, and the
  // rename must preserve that linkage.
  EXPECT_FALSE(attr::satisfiable(attr::combine_attributes(a, b, 1)));
}

// ---------------------------------------------------------------------------
// Spurious violations eliminated, real ones kept
// ---------------------------------------------------------------------------

// Master-only checkpoint in a loop: the only self-path goes through the
// workers' arm, which rank 0 can never execute — spurious under
// refinement, flagged without it.
constexpr const char* kMasterLoop = R"(
  program master_loop {
    loop 5 {
      if (rank == 0) {
        checkpoint "m";
        for w in 1 .. nprocs { send to w tag 1; }
      } else {
        recv from 0 tag 1;
        checkpoint "w";
      }
    }
  })";

TEST(Refine, DiscardsInfeasibleSelfViolation) {
  const mp::Program p = mp::parse(kMasterLoop);
  const match::ExtendedCfg ext = build_extended_cfg(p);
  const auto ckpts = ext.graph().nodes_of_kind(cfg::NodeKind::kCheckpoint);
  cfg::NodeId master = cfg::kNoNode;
  for (const auto& n : ckpts)
    if (static_cast<const mp::CheckpointStmt*>(n.stmt)->note == "m")
      master = n.id;
  ASSERT_NE(master, cfg::kNoNode);

  // Coarse: a self message path exists (m → send ⇒ recv → back edge → m).
  const auto coarse = ext.classify_paths(master, master);
  EXPECT_TRUE(coarse.has_message_path);
  // Refined: the recv→m segment needs rank≠0 ∧ rank==0 — infeasible.
  const auto refined = ext.classify_paths_refined(master, master);
  EXPECT_FALSE(refined.has_message_path);
}

TEST(Refine, KeepsRealHardViolation) {
  const mp::Program p = mp::parse(kMasterLoop);
  const match::ExtendedCfg ext = build_extended_cfg(p);
  // m → w (master checkpoint before send, worker checkpoint after recv)
  // is a real same-iteration causality; refinement must keep it.
  place::CheckOptions refined_opts;
  refined_opts.attribute_refinement = true;
  const auto refined = place::check_condition1(ext, refined_opts);
  EXPECT_GE(refined.hard_count(), 1);
}

TEST(Refine, ReducesViolationCount) {
  const mp::Program p = mp::parse(kMasterLoop);
  const match::ExtendedCfg ext = build_extended_cfg(p);
  const auto coarse = place::check_condition1(ext);
  place::CheckOptions refined_opts;
  refined_opts.attribute_refinement = true;
  const auto refined = place::check_condition1(ext, refined_opts);
  EXPECT_LT(refined.violations.size(), coarse.violations.size());
}

TEST(Refine, StrictRepairNoWorseWhenRefined) {
  // Refinement never increases repair work (it can only discard
  // violations), and the repaired program is still safe. (It cannot
  // always *reduce* structural operations: once same-index checkpoints
  // merge at an arm boundary, the merged unguarded checkpoint's
  // violations are real for both checkers.)
  mp::Program coarse_prog = mp::parse(kMasterLoop);
  place::RepairOptions coarse_opts;
  coarse_opts.policy = place::RepairPolicy::kStrict;
  const auto coarse_report =
      place::repair_placement(coarse_prog, coarse_opts);
  ASSERT_TRUE(coarse_report.success);

  mp::Program refined_prog = mp::parse(kMasterLoop);
  place::RepairOptions refined_opts = coarse_opts;
  refined_opts.check.attribute_refinement = true;
  const auto refined_report =
      place::repair_placement(refined_prog, refined_opts);
  ASSERT_TRUE(refined_report.success);

  const int coarse_ops = coarse_report.moves + coarse_report.merges +
                         coarse_report.hoists;
  const int refined_ops = refined_report.moves + refined_report.merges +
                          refined_report.hoists;
  EXPECT_LE(refined_ops, coarse_ops);
  // And fewer violations were on the books to begin with.
  EXPECT_LE(refined_report.initial_total, coarse_report.initial_total);
}

TEST(Refine, MasterOnlyCommunicationFreesMasterCheckpoint) {
  // The master checkpoint has no communication at all; every coarse
  // violation involving it routes through worker-guarded statements.
  // Refinement proves (m → anything) infeasible immediately — rank 0
  // cannot execute a worker send.
  const mp::Program p = mp::parse(R"(
    program split {
      loop 4 {
        if (rank == 0) {
          checkpoint "m";
          compute 5.0;
        } else {
          checkpoint "w";
          if (rank % 2 == 1) {
            if (rank + 1 < nprocs) {
              send to rank + 1 tag 1; recv from rank + 1 tag 1;
            }
          } else {
            send to rank - 1 tag 1; recv from rank - 1 tag 1;
          }
        }
      }
    })");
  const match::ExtendedCfg ext = build_extended_cfg(p);
  const auto ckpts = ext.graph().nodes_of_kind(cfg::NodeKind::kCheckpoint);
  cfg::NodeId master = cfg::kNoNode, worker = cfg::kNoNode;
  for (const auto& n : ckpts) {
    const auto& c = *static_cast<const mp::CheckpointStmt*>(n.stmt);
    (c.note == "m" ? master : worker) = n.id;
  }
  // Coarse: graph paths exist from m through the worker arm's sends.
  EXPECT_TRUE(ext.classify_paths(master, master).has_message_path);
  EXPECT_TRUE(ext.classify_paths(master, worker).has_message_path);
  // Refined: rank 0 cannot reach any send — both discarded.
  EXPECT_FALSE(
      ext.classify_paths_refined(master, master).has_message_path);
  EXPECT_FALSE(
      ext.classify_paths_refined(master, worker).has_message_path);
  // The worker-side self causality is real and must be kept.
  EXPECT_TRUE(
      ext.classify_paths_refined(worker, worker).has_message_path);
}

// Soundness: refined repair still yields consistent straight cuts on the
// random corpus.
class RefinedSafety : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RefinedSafety, RepairedStraightCutsStillRecoveryLines) {
  mp::GenerateOptions gopts;
  gopts.seed = GetParam();
  gopts.segments = 7;
  gopts.misalign_checkpoints = true;
  gopts.allow_collectives = false;
  mp::Program program = mp::generate_program(gopts);

  place::RepairOptions ropts;
  ropts.check.attribute_refinement = true;
  const auto report = place::repair_placement(program, ropts);
  ASSERT_TRUE(report.success) << mp::print(program);

  for (const int nprocs : {2, 4, 6}) {
    const auto result = sim::simulate(program, nprocs, 1);
    ASSERT_TRUE(result.trace.completed) << mp::print(program);
    for (const auto& cut : trace::all_straight_cuts(result.trace))
      EXPECT_TRUE(trace::analyze_cut(result.trace, cut).consistent)
          << "n=" << nprocs << "\n" << mp::print(program);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefinedSafety,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(Refine, NoPathMeansNoPathEitherWay) {
  const mp::Program p = mp::parse(R"(
    program quiet { checkpoint; compute 1.0; checkpoint; })");
  const match::ExtendedCfg ext = build_extended_cfg(p);
  const auto ckpts = ext.graph().nodes_of_kind(cfg::NodeKind::kCheckpoint);
  const auto refined =
      ext.classify_paths_refined(ckpts[0].id, ckpts[1].id);
  EXPECT_FALSE(refined.has_message_path);
}

TEST(Refine, HopBudgetIsConservative) {
  const mp::Program p = mp::parse(kMasterLoop);
  const match::ExtendedCfg ext = build_extended_cfg(p);
  const auto ckpts = ext.graph().nodes_of_kind(cfg::NodeKind::kCheckpoint);
  match::ExtendedCfg::RefineOptions opts;
  opts.max_hops = 0;  // exhausted budget: behaves like the coarse check
  const auto refined =
      ext.classify_paths_refined(ckpts[0].id, ckpts[0].id, opts);
  const auto coarse = ext.classify_paths(ckpts[0].id, ckpts[0].id);
  EXPECT_EQ(refined.has_message_path, coarse.has_message_path);
}

}  // namespace
