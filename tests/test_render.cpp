// Unit tests for the ASCII space-time renderer.
#include <gtest/gtest.h>

#include "mp/parser.h"
#include "sim/engine.h"
#include "trace/render.h"
#include "util/error.h"

namespace {

using namespace acfc;

trace::Trace run() {
  // Spread the events in time so that each lands in its own diagram
  // column at the default width.
  const mp::Program p = mp::parse(R"(
    program r {
      compute 2.0;
      checkpoint;
      compute 2.0;
      if (rank == 0) { send to 1 tag 1; } else { recv from 0 tag 1; }
      compute 2.0;
    })");
  return sim::simulate(p, 2).trace;
}

TEST(Render, OneRowPerProcess) {
  const auto t = run();
  const std::string art = trace::render_spacetime(t);
  EXPECT_NE(art.find("P0"), std::string::npos);
  EXPECT_NE(art.find("P1"), std::string::npos);
}

TEST(Render, MarksEventKinds) {
  const auto t = run();
  trace::RenderOptions opts;
  opts.legend = false;
  const std::string art = trace::render_spacetime(t, opts);
  EXPECT_NE(art.find('C'), std::string::npos);  // checkpoint
  EXPECT_NE(art.find('s'), std::string::npos);  // send
  EXPECT_NE(art.find('r'), std::string::npos);  // recv
  EXPECT_NE(art.find('|'), std::string::npos);  // finish
}

TEST(Render, LegendToggle) {
  const auto t = run();
  trace::RenderOptions with, without;
  without.legend = false;
  EXPECT_NE(trace::render_spacetime(t, with).find("C=checkpoint"),
            std::string::npos);
  EXPECT_EQ(trace::render_spacetime(t, without).find("C=checkpoint"),
            std::string::npos);
}

TEST(Render, RespectsWidth) {
  const auto t = run();
  trace::RenderOptions opts;
  opts.width = 40;
  opts.legend = false;
  const std::string art = trace::render_spacetime(t, opts);
  // Each row: "Pk  " prefix (4 chars) + width + newline.
  const auto first_newline = art.find('\n');
  EXPECT_EQ(first_newline, 4u + 40u);
}

TEST(Render, TimeWindow) {
  const auto t = run();
  trace::RenderOptions opts;
  opts.t_begin = 0.0;
  opts.t_end = 1.0;  // before the checkpoint at t=2
  opts.legend = false;
  const std::string art = trace::render_spacetime(t, opts);
  EXPECT_EQ(art.find('C'), std::string::npos);
}

TEST(Render, FailureRunShowsFailureAndRestart) {
  const mp::Program p = mp::parse(R"(
    program f { loop 3 { compute 2.0; checkpoint;
      send to (rank + 1) % nprocs tag 1;
      recv from (rank - 1 + nprocs) % nprocs tag 1; } })");
  sim::SimOptions opts;
  opts.nprocs = 2;
  opts.failures = {{0, 3.0}};
  const auto result = sim::Engine(p, opts).run();
  const std::string art = trace::render_spacetime(result.trace);
  EXPECT_NE(art.find('X'), std::string::npos);
  EXPECT_NE(art.find('^'), std::string::npos);
}

TEST(Render, RejectsDegenerateOptions) {
  const auto t = run();
  trace::RenderOptions narrow;
  narrow.width = 3;
  EXPECT_THROW(trace::render_spacetime(t, narrow), util::InternalError);
  trace::RenderOptions empty;
  empty.t_begin = 5.0;
  empty.t_end = 5.0;
  EXPECT_THROW(trace::render_spacetime(t, empty), util::InternalError);
}

}  // namespace
