// End-to-end validation of the paper's central claims.
//
// Theorem 3.2 / Condition 1 (safety): after Phase III repairs a program's
// checkpoint placement, every straight cut of checkpoints in every
// execution is a recovery line. We property-test this over randomly
// generated SPMD programs × world sizes × seeds: run the offline pipeline,
// simulate, enumerate every instanced straight cut, and check consistency
// via vector clocks.
//
// Lemma 3.1 (matching soundness): the true dynamic sender of every received
// message is among the statically matched send nodes — checked by
// comparing each simulated message's (send stmt, recv stmt) pair against
// the extended CFG's message edges.
//
// The completeness direction: programs reported as violating by the
// checker do exhibit inconsistent straight cuts in some execution.
#include <gtest/gtest.h>

#include "match/match.h"
#include "mp/generate.h"
#include "mp/lower.h"
#include "mp/parser.h"
#include "mp/printer.h"
#include "place/place.h"
#include "sim/engine.h"
#include "trace/analysis.h"

namespace {

using namespace acfc;

struct SafetyOutcome {
  int cuts_checked = 0;
  int inconsistent = 0;
};

SafetyOutcome check_all_straight_cuts(const trace::Trace& trace) {
  SafetyOutcome out;
  for (const auto& cut : trace::all_straight_cuts(trace)) {
    ++out.cuts_checked;
    if (!trace::analyze_cut(trace, cut).consistent) ++out.inconsistent;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Lemma 3.1 on concrete executions
// ---------------------------------------------------------------------------

void expect_lemma31(const mp::Program& program, int nprocs,
                    std::uint64_t seed) {
  const match::ExtendedCfg ext = match::build_extended_cfg(program);
  const auto result = sim::simulate(program, nprocs, seed);
  ASSERT_TRUE(result.trace.completed)
      << "deadlock in " << mp::print(program);
  for (const auto& m : result.trace.app_messages()) {
    if (!m.consumed) continue;
    const auto send_node = ext.graph().node_for_stmt(m.send_stmt_uid);
    const auto recv_node = ext.graph().node_for_stmt(m.recv_stmt_uid);
    ASSERT_TRUE(send_node.has_value());
    ASSERT_TRUE(recv_node.has_value());
    bool matched = false;
    for (const auto& e : ext.message_edges())
      if (e.send == *send_node && e.recv == *recv_node) matched = true;
    EXPECT_TRUE(matched) << "dynamic message " << m.src << "→" << m.dst
                         << " (stmt " << m.send_stmt_uid << "→"
                         << m.recv_stmt_uid
                         << ") not statically matched in:\n"
                         << mp::print(program);
  }
}

TEST(Lemma31, JacobiPrograms) {
  const mp::Program p = mp::parse(R"(
    program jacobi {
      loop 3 {
        compute 1.0;
        if (rank % 2 == 0) {
          checkpoint;
          if (rank + 1 < nprocs) { send to rank + 1 tag 1;
                                   recv from rank + 1 tag 1; }
        } else {
          send to rank - 1 tag 1;
          recv from rank - 1 tag 1;
          checkpoint;
        }
      }
    })");
  for (int n : {2, 3, 4, 5, 8}) expect_lemma31(p, n, 1);
}

class Lemma31Random : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma31Random, TrueSenderAlwaysMatched) {
  mp::GenerateOptions opts;
  opts.seed = GetParam();
  opts.segments = 8;
  opts.allow_collectives = false;  // collectives use self edges, not pairs
  opts.allow_irregular = true;
  const mp::Program p = mp::generate_program(opts);
  for (int n : {2, 4, 5}) expect_lemma31(p, n, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma31Random,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---------------------------------------------------------------------------
// Completeness direction: flagged programs do break
// ---------------------------------------------------------------------------

TEST(SafetyCounterexample, MisalignedJacobiBreaksStraightCuts) {
  const mp::Program p = mp::parse(R"(
    program mis {
      loop 3 {
        compute 1.0;
        if (rank % 2 == 0) {
          checkpoint;
          send to rank + 1 tag 1;
          recv from rank + 1 tag 1;
        } else {
          send to rank - 1 tag 1;
          recv from rank - 1 tag 1;
          checkpoint;
        }
      }
    })");
  // Checker flags it...
  const auto check =
      place::check_condition1(match::build_extended_cfg(p));
  EXPECT_GE(check.hard_count(), 1);
  // ...and the execution confirms.
  const auto result = sim::simulate(p, 4, 1);
  ASSERT_TRUE(result.trace.completed);
  const auto outcome = check_all_straight_cuts(result.trace);
  EXPECT_GT(outcome.inconsistent, 0);
}

// ---------------------------------------------------------------------------
// Safety: repaired placements have only consistent straight cuts
// ---------------------------------------------------------------------------

struct SafetyCase {
  std::uint64_t seed;
  bool misalign;
};

class SafetyRandom
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(SafetyRandom, RepairedStraightCutsAreRecoveryLines) {
  const auto [seed, misalign] = GetParam();
  mp::GenerateOptions gopts;
  gopts.seed = seed;
  gopts.segments = 7;
  gopts.misalign_checkpoints = misalign;
  gopts.allow_collectives = false;
  mp::Program program = mp::generate_program(gopts);

  place::RepairOptions ropts;
  const auto report = place::repair_placement(program, ropts);
  ASSERT_TRUE(report.success) << mp::print(program);

  int total_cuts = 0;
  for (const int nprocs : {2, 3, 4, 6}) {
    for (const std::uint64_t sim_seed : {1ull, 2ull}) {
      const mp::Program frozen = program.clone();
      const auto result = sim::simulate(frozen, nprocs, sim_seed);
      ASSERT_TRUE(result.trace.completed)
          << "deadlock (n=" << nprocs << "):\n" << mp::print(program);
      const auto outcome = check_all_straight_cuts(result.trace);
      total_cuts += outcome.cuts_checked;
      EXPECT_EQ(outcome.inconsistent, 0)
          << "inconsistent straight cut (n=" << nprocs << ", seed "
          << sim_seed << ") in repaired program:\n"
          << mp::print(program);
    }
  }
  // The property must not hold vacuously for programs with checkpoints.
  if (mp::checkpoint_count(program) > 0) {
    EXPECT_GT(total_cuts, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlignedSeeds, SafetyRandom,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 16),
                       ::testing::Values(false)));

INSTANTIATE_TEST_SUITE_P(
    MisalignedSeeds, SafetyRandom,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 16),
                       ::testing::Values(true)));

// ---------------------------------------------------------------------------
// Safety with collectives, exercised through lowering
// ---------------------------------------------------------------------------

class SafetyCollectives : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SafetyCollectives, LoweredCollectiveProgramsStaySafe) {
  mp::GenerateOptions gopts;
  gopts.seed = GetParam();
  gopts.segments = 6;
  gopts.allow_collectives = true;
  gopts.misalign_checkpoints = true;
  mp::Program program =
      mp::lower_collectives(mp::generate_program(gopts));

  const auto report = place::repair_placement(program);
  ASSERT_TRUE(report.success) << mp::print(program);

  for (const int nprocs : {2, 3, 5}) {
    const auto result = sim::simulate(program, nprocs, 1);
    ASSERT_TRUE(result.trace.completed) << mp::print(program);
    for (const auto& cut : trace::all_straight_cuts(result.trace))
      EXPECT_TRUE(trace::analyze_cut(result.trace, cut).consistent)
          << "n=" << nprocs << "\n" << mp::print(program);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SafetyCollectives,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// The paper's greedy matching policy is still safe on regular programs
// ---------------------------------------------------------------------------

class SafetyGreedyMatch : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SafetyGreedyMatch, GreedyPolicyRepairsSafely) {
  mp::GenerateOptions gopts;
  gopts.seed = GetParam();
  gopts.segments = 6;
  gopts.misalign_checkpoints = true;
  gopts.allow_collectives = false;
  mp::Program program = mp::generate_program(gopts);

  place::RepairOptions ropts;
  ropts.match.policy = match::MatchPolicy::kPaperGreedy;
  const auto report = place::repair_placement(program, ropts);
  ASSERT_TRUE(report.success) << mp::print(program);

  const auto result = sim::simulate(program, 4, 1);
  ASSERT_TRUE(result.trace.completed);
  for (const auto& cut : trace::all_straight_cuts(result.trace))
    EXPECT_TRUE(trace::analyze_cut(result.trace, cut).consistent)
        << mp::print(program);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SafetyGreedyMatch,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Strict policy: even "latest" cuts become recovery lines
// ---------------------------------------------------------------------------

class StrictSafety : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StrictSafety, LatestCutsAreRecoveryLinesAtAnyTime) {
  mp::GenerateOptions gopts;
  gopts.seed = GetParam();
  gopts.segments = 6;
  gopts.misalign_checkpoints = true;
  gopts.allow_collectives = false;
  mp::Program program = mp::generate_program(gopts);

  place::RepairOptions ropts;
  ropts.policy = place::RepairPolicy::kStrict;
  const auto report = place::repair_placement(program, ropts);
  ASSERT_TRUE(report.success) << mp::print(program);

  const auto result = sim::simulate(program, 4, 1);
  ASSERT_TRUE(result.trace.completed);
  // Sample failure times across the run: for every static index, the cut
  // of latest index-i checkpoints must be consistent even when processes
  // are at different instances — zero rollback propagation, the paper's
  // headline property (strict reading of Condition 1).
  int max_index = 0;
  for (const auto& c : result.trace.checkpoints)
    max_index = std::max(max_index, c.static_index);
  const double end = result.trace.end_time;
  for (int i = 1; i <= 20; ++i) {
    const double t = end * i / 20.0;
    for (int index = 1; index <= max_index; ++index) {
      const auto cut =
          trace::latest_straight_cut_at(result.trace, index, t);
      if (!cut) continue;  // some process has not reached index yet
      EXPECT_TRUE(trace::analyze_cut(result.trace, *cut).consistent)
          << "latest S_" << index << " cut at t=" << t
          << " inconsistent in:\n"
          << mp::print(program);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrictSafety,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Recovery manager end-to-end under repaired placements
// ---------------------------------------------------------------------------

class RecoveryE2E : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RecoveryE2E, FailureInjectionReplaysToSameDigest) {
  mp::GenerateOptions gopts;
  gopts.seed = GetParam();
  gopts.segments = 6;
  gopts.allow_collectives = false;
  gopts.allow_irregular = false;
  mp::Program program = mp::generate_program(gopts);
  const auto report = place::repair_placement(program);
  ASSERT_TRUE(report.success);

  sim::SimOptions clean;
  clean.nprocs = 4;
  sim::Engine base_engine(program, clean);
  const auto base = base_engine.run();
  ASSERT_TRUE(base.trace.completed);

  sim::SimOptions faulty;
  faulty.nprocs = 4;
  faulty.recovery_overhead = 0.5;
  faulty.failures = {{static_cast<int>(GetParam() % 4),
                      0.4 * base.trace.end_time},
                     {static_cast<int>((GetParam() + 1) % 4),
                      0.9 * base.trace.end_time}};
  sim::Engine engine(program, faulty);
  const auto rec = engine.run();
  EXPECT_TRUE(rec.trace.completed) << mp::print(program);
  EXPECT_EQ(rec.trace.final_digest, base.trace.final_digest)
      << mp::print(program);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryE2E,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
