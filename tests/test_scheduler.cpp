// Differential coverage for the calendar-queue event core: the new
// scheduler must pop the exact (time, seq) sequence the legacy
// std::priority_queue core pops, so every observable of a run —
// final digest, event counts, end time, per-channel counters, recovery
// history — is bit-identical with `SimOptions::legacy_scheduler` on and
// off. A fast grid runs in tier 1; the 200-program generated corpus
// (with fault plans, serial and parallel) runs in the slow tier.
#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <string>
#include <vector>

#include "mp/generate.h"
#include "sim/calqueue.h"
#include "sim/engine.h"
#include "sim/fault.h"
#include "sim/montecarlo.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace {

using namespace acfc;

sim::SimResult run_with(const mp::Program& program, sim::SimOptions opts,
                        bool legacy) {
  opts.legacy_scheduler = legacy;
  sim::Engine engine(program, opts);
  return engine.run();
}

/// Every observable the two schedulers must agree on, bitwise.
void expect_identical(const sim::SimResult& a, const sim::SimResult& b) {
  EXPECT_EQ(a.trace.final_digest, b.trace.final_digest);
  EXPECT_EQ(a.trace.end_time, b.trace.end_time);
  EXPECT_EQ(a.trace.events.size(), b.trace.events.size());
  EXPECT_EQ(a.trace.messages.size(), b.trace.messages.size());
  EXPECT_EQ(a.trace.checkpoints.size(), b.trace.checkpoints.size());
  EXPECT_EQ(a.stats.events_processed, b.stats.events_processed);
  EXPECT_EQ(a.stats.app_messages, b.stats.app_messages);
  EXPECT_EQ(a.stats.statement_checkpoints, b.stats.statement_checkpoints);
  EXPECT_EQ(a.stats.forced_checkpoints, b.stats.forced_checkpoints);
  EXPECT_EQ(a.final_sends, b.final_sends);
  EXPECT_EQ(a.final_recvs, b.final_recvs);
  EXPECT_EQ(a.recoveries.size(), b.recoveries.size());
  for (std::size_t i = 0; i < a.recoveries.size(); ++i) {
    EXPECT_EQ(a.recoveries[i].fail_time, b.recoveries[i].fail_time);
    EXPECT_EQ(a.recoveries[i].failed_proc, b.recoveries[i].failed_proc);
  }
}

// ---------------------------------------------------------------------------
// Fast grid (tier 1): workloads × world sizes × jitter × faults
// ---------------------------------------------------------------------------

TEST(Scheduler, MatchesLegacyOnRingGrid) {
  benchws::RingParams params;
  params.iterations = 8;
  params.compute_cost = 2.0;
  params.checkpoint = true;
  const mp::Program program = benchws::ring_exchange(params);
  for (const int n : {2, 5, 8, 16}) {
    for (const double jitter : {0.0, 0.3}) {
      sim::SimOptions opts;
      opts.nprocs = n;
      opts.compute_jitter = jitter;
      opts.seed = 11 + static_cast<std::uint64_t>(n);
      SCOPED_TRACE("n=" + std::to_string(n) +
                   " jitter=" + std::to_string(jitter));
      expect_identical(run_with(program, opts, false),
                       run_with(program, opts, true));
    }
  }
}

TEST(Scheduler, MatchesLegacyOnDominoWithFaults) {
  const mp::Program program = benchws::domino_exchange(10, 3.0);
  sim::SimOptions opts;
  opts.nprocs = 6;
  opts.compute_jitter = 0.25;
  opts.checkpoint_overhead = 0.5;
  opts.recovery_overhead = 2.0;
  opts.fault_plan.faults.push_back(sim::FaultPlan::after_checkpoint(2, 2));
  opts.fault_plan.faults.push_back(sim::FaultPlan::after_events(4, 150));
  const auto a = run_with(program, opts, false);
  const auto b = run_with(program, opts, true);
  // The plan must actually fire for this test to mean anything.
  ASSERT_FALSE(a.recoveries.empty());
  expect_identical(a, b);
}

TEST(Scheduler, MatchesLegacyUnderTimedFaultAndSparseTimes) {
  // at_time faults plus a long-tailed delay model exercise bucket
  // rotation over mostly-empty calendar days.
  benchws::RingParams params;
  params.iterations = 6;
  params.compute_cost = 50.0;
  params.checkpoint = true;
  const mp::Program program = benchws::ring_exchange(params);
  sim::SimOptions opts;
  opts.nprocs = 5;
  opts.compute_jitter = 0.5;
  opts.checkpoint_overhead = 1.0;
  opts.recovery_overhead = 5.0;
  opts.fault_plan.faults.push_back(sim::FaultPlan::at_time(1, 120.0));
  expect_identical(run_with(program, opts, false),
                   run_with(program, opts, true));
}

// ---------------------------------------------------------------------------
// Generated corpus (slow tier): 200 programs, with and without faults,
// serial and parallel
// ---------------------------------------------------------------------------

// Same corpus recipe as test_fastpath.cpp: 100 seeds × misaligned
// {off, on}, sizes cycling through 6..22 segments.
mp::Program corpus_program(int index, bool misalign) {
  mp::GenerateOptions opts;
  opts.seed = 0x5eedULL * 2654435761ULL + static_cast<std::uint64_t>(index);
  opts.segments = 6 + (index % 5) * 4;
  opts.misalign_checkpoints = misalign;
  return mp::generate_program(opts);
}

sim::SimOptions corpus_options(int index) {
  sim::SimOptions opts;
  opts.nprocs = 3 + index % 6;
  opts.seed = 1000 + static_cast<std::uint64_t>(index);
  opts.compute_jitter = (index % 3) * 0.2;
  opts.checkpoint_overhead = 0.25;
  opts.recovery_overhead = 1.0;
  // Every third program gets a fault plan, cycling through trigger kinds.
  switch (index % 6) {
    case 0:
      opts.fault_plan.faults.push_back(
          sim::FaultPlan::after_checkpoint(index % opts.nprocs, 1));
      break;
    case 3:
      opts.fault_plan.faults.push_back(
          sim::FaultPlan::after_events(index % opts.nprocs, 200));
      break;
    default:
      break;
  }
  return opts;
}

TEST(SchedulerCorpusSlow, MatchesLegacyOn200Programs) {
  int programs = 0;
  for (int index = 0; index < 100; ++index) {
    for (const bool misalign : {false, true}) {
      const mp::Program program = corpus_program(index, misalign);
      const sim::SimOptions opts = corpus_options(index);
      SCOPED_TRACE("index=" + std::to_string(index) +
                   " misalign=" + std::to_string(misalign));
      expect_identical(run_with(program, opts, false),
                       run_with(program, opts, true));
      ++programs;
    }
  }
  EXPECT_GE(programs, 200);
}

// ---------------------------------------------------------------------------
// Data-structure-level differential property test: CalendarQueue against
// std::priority_queue<Ev, EvCmp> under randomized push/pop interleavings.
// (time, seq) is a unique total order, so the two must agree on the EXACT
// pop sequence, not just multiset equality. The op mix deliberately
// stresses the hard regimes: same-time bursts (one day, heap discipline),
// regular spacing (steady ring occupancy), far-future outliers (empty-year
// direct jumps + width re-estimation), and the tiny-behind-the-scan pushes
// the engine's time slack can produce (anchor rewind).

void expect_pop_matches(sim::CalendarQueue& cal,
                        std::priority_queue<sim::Ev, std::vector<sim::Ev>,
                                            sim::EvCmp>& ref,
                        double& now) {
  ASSERT_FALSE(ref.empty());
  ASSERT_FALSE(cal.empty());
  const sim::Ev got = cal.pop();
  const sim::Ev want = ref.top();
  ref.pop();
  ASSERT_EQ(got.time, want.time);
  ASSERT_EQ(got.seq, want.seq);
  now = got.time;
}

TEST(SchedulerQueueProperty, RandomOpSequencesMatchPriorityQueue) {
  long total_direct_jumps = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    util::Rng rng(seed);
    sim::CalendarQueue cal;
    std::priority_queue<sim::Ev, std::vector<sim::Ev>, sim::EvCmp> ref;
    long seq = 0;
    double now = 0.0;
    for (int op = 0; op < 4000; ++op) {
      const bool push = ref.empty() || rng.uniform_int(0, 99) < 55;
      if (push) {
        const auto regime = rng.uniform_int(0, 9);
        double dt = 0.0;  // regimes 0-2: same-time burst
        if (regime >= 3 && regime <= 7)
          dt = 1e-3 * static_cast<double>(rng.uniform_int(1, 50));
        else if (regime == 8)
          dt = static_cast<double>(rng.uniform_int(1, 100));  // outlier
        sim::Ev ev;
        ev.time = regime == 9 ? std::max(0.0, now - 1e-12) : now + dt;
        ev.seq = seq++;
        ev.a = op;
        cal.push(ev);
        ref.push(ev);
      } else {
        expect_pop_matches(cal, ref, now);
      }
    }
    while (!ref.empty()) expect_pop_matches(cal, ref, now);
    EXPECT_TRUE(cal.empty());
    total_direct_jumps += cal.stats().direct_jumps;
  }
  // The outlier regime must have exercised the empty-year jump path —
  // otherwise the mix is too tame to count as differential coverage.
  EXPECT_GT(total_direct_jumps, 0);
}

TEST(SchedulerQueueProperty, BurstThenSparseDrainMatches) {
  // Deterministic boundary case: a 256-event same-time burst (everything
  // in one day; grows the ring past two doublings) followed by events at
  // exponentially growing gaps — the width estimate always trails the
  // largest gaps, so draining them needs empty-year direct jumps.
  sim::CalendarQueue cal;
  std::priority_queue<sim::Ev, std::vector<sim::Ev>, sim::EvCmp> ref;
  long seq = 0;
  for (int i = 0; i < 256; ++i) {
    sim::Ev ev;
    ev.time = 5.0;
    ev.seq = seq++;
    cal.push(ev);
    ref.push(ev);
  }
  double t = 1000.0;
  for (int i = 0; i < 24; ++i) {
    sim::Ev ev;
    ev.time = t;
    ev.seq = seq++;
    cal.push(ev);
    ref.push(ev);
    t *= 4.0;
  }
  EXPECT_GT(cal.stats().grows, 0);
  double now = 0.0;
  while (!ref.empty()) expect_pop_matches(cal, ref, now);
  EXPECT_TRUE(cal.empty());
  EXPECT_GT(cal.stats().direct_jumps, 0);
}

TEST(SchedulerCorpusSlow, ParallelBatchMatchesLegacySerialBatch) {
  // The full cross product: calendar-parallel vs legacy-serial. Any
  // scheduler divergence OR any pool nondeterminism breaks the digests.
  const mp::Program program = benchws::domino_exchange(8, 4.0);
  std::vector<sim::SimOptions> calendar, legacy;
  for (int index = 0; index < 24; ++index) {
    sim::SimOptions opts = corpus_options(index);
    opts.legacy_scheduler = false;
    calendar.push_back(opts);
    opts.legacy_scheduler = true;
    legacy.push_back(opts);
  }
  const auto fast =
      sim::run_batch(program, calendar, sim::McOptions{4});
  const auto slow =
      sim::run_batch(program, legacy, sim::McOptions{1});
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    SCOPED_TRACE("run " + std::to_string(i));
    expect_identical(fast[i], slow[i]);
  }
}

}  // namespace
