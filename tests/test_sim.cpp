// Unit tests for the discrete-event simulator: execution semantics (FIFO,
// blocking receives, collectives), vector-clock instrumentation,
// determinism, error detection, and failure/recovery with message-log
// replay.
#include <gtest/gtest.h>

#include "mp/lower.h"
#include "mp/parser.h"
#include "sim/engine.h"
#include "util/error.h"

namespace {

using namespace acfc;
using sim::Engine;
using sim::SimOptions;
using sim::SimResult;

SimResult run(const std::string& source, int nprocs,
              std::uint64_t seed = 1) {
  const mp::Program p = mp::parse(source);
  return sim::simulate(p, nprocs, seed);
}

TEST(Sim, StraightLineCompletes) {
  const auto r = run("program t { compute 1.0; compute 2.0; }", 2);
  EXPECT_TRUE(r.trace.completed);
  EXPECT_GE(r.trace.end_time, 3.0);
  // 2 procs × 2 computes + 2 finishes.
  int computes = 0;
  for (const auto& e : r.trace.events)
    if (e.kind == trace::EventKind::kCompute) ++computes;
  EXPECT_EQ(computes, 4);
}

TEST(Sim, RingShiftDeliversEveryMessage) {
  const auto r = run(R"(
    program ring {
      send to (rank + 1) % nprocs tag 1;
      recv from (rank - 1 + nprocs) % nprocs tag 1;
    })",
                     5);
  EXPECT_TRUE(r.trace.completed);
  EXPECT_EQ(r.stats.app_messages, 5);
  for (const auto& m : r.trace.messages) {
    EXPECT_TRUE(m.consumed);
    EXPECT_EQ(m.dst, (m.src + 1) % 5);
  }
}

TEST(Sim, RecvBlocksUntilDelivery) {
  // Rank 1 receives before rank 0 sends (rank 0 computes first): the recv
  // completion time must be at least the send time plus delay.
  const auto r = run(R"(
    program late {
      if (rank == 0) { compute 10.0; send to 1 tag 1; }
      else { recv from 0 tag 1; }
    })",
                     2);
  EXPECT_TRUE(r.trace.completed);
  const auto msgs = r.trace.app_messages();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_GE(msgs[0].recv_time, 10.0);
}

TEST(Sim, FifoPerChannel) {
  const auto r = run(R"(
    program fifo {
      if (rank == 0) {
        send to 1 tag 1; send to 1 tag 1; send to 1 tag 1;
      } else {
        recv from 0 tag 1; recv from 0 tag 1; recv from 0 tag 1;
      }
    })",
                     2);
  EXPECT_TRUE(r.trace.completed);
  const auto msgs = r.trace.app_messages();
  ASSERT_EQ(msgs.size(), 3u);
  // Sequence numbers consumed in order.
  std::vector<double> recv_times;
  for (const auto& m : msgs) recv_times.push_back(m.recv_time);
  for (size_t i = 1; i < msgs.size(); ++i) {
    EXPECT_LT(msgs[i - 1].seq, msgs[i].seq);
    EXPECT_LE(msgs[i - 1].recv_time, msgs[i].recv_time);
  }
}

TEST(Sim, TagSelectionWithinChannel) {
  // Receiver asks for tag 2 first although tag 1 arrives first.
  const auto r = run(R"(
    program tags {
      if (rank == 0) {
        send to 1 tag 1; send to 1 tag 2;
      } else {
        recv from 0 tag 2; recv from 0 tag 1;
      }
    })",
                     2);
  EXPECT_TRUE(r.trace.completed);
}

TEST(Sim, AnySourceReceives) {
  const auto r = run(R"(
    program any {
      if (rank == 0) {
        recv from any tag 1; recv from any tag 1;
      } else {
        send to 0 tag 1;
      }
    })",
                     3);
  EXPECT_TRUE(r.trace.completed);
  EXPECT_EQ(r.stats.app_messages, 2);
}

TEST(Sim, VectorClocksOrderSendBeforeRecv) {
  const auto r = run(R"(
    program order {
      if (rank == 0) { send to 1 tag 1; } else { recv from 0 tag 1; }
    })",
                     2);
  const trace::EventRec* send = nullptr;
  const trace::EventRec* recv = nullptr;
  for (const auto& e : r.trace.events) {
    if (e.kind == trace::EventKind::kSend) send = &e;
    if (e.kind == trace::EventKind::kRecv) recv = &e;
  }
  ASSERT_NE(send, nullptr);
  ASSERT_NE(recv, nullptr);
  EXPECT_TRUE(send->vc.happened_before(recv->vc));
}

TEST(Sim, DeterministicDigestAcrossRuns) {
  const char* source = R"(
    program det {
      loop 3 {
        compute 1.0;
        send to (rank + 1) % nprocs tag 1;
        recv from (rank - 1 + nprocs) % nprocs tag 1;
        checkpoint;
      }
    })";
  const auto a = run(source, 4, 7);
  const auto b = run(source, 4, 7);
  EXPECT_EQ(a.trace.final_digest, b.trace.final_digest);
}

TEST(Sim, DigestInsensitiveToNetworkJitter) {
  const mp::Program p = mp::parse(R"(
    program jit {
      loop 2 {
        send to (rank + 1) % nprocs tag 1;
        recv from (rank - 1 + nprocs) % nprocs tag 1;
      }
    })");
  SimOptions a;
  a.nprocs = 3;
  SimOptions b;
  b.nprocs = 3;
  b.delay.jitter = 0.01;
  b.compute_jitter = 0.2;
  Engine ea(p, a), eb(p, b);
  EXPECT_EQ(ea.run().trace.final_digest, eb.run().trace.final_digest);
}

TEST(Sim, CheckpointsRecordStaticIndexAndInstance) {
  const auto r = run(R"(
    program ck {
      loop 3 { compute 1.0; checkpoint; }
      checkpoint;
    })",
                     2);
  ASSERT_EQ(r.trace.checkpoints.size(), 8u);  // (3 + 1) × 2 procs
  long max_instance = 0;
  for (const auto& c : r.trace.checkpoints) {
    EXPECT_GE(c.static_index, 1);
    max_instance = std::max(max_instance, c.instance);
  }
  EXPECT_EQ(max_instance, 2);  // loop checkpoint instances 0,1,2
}

TEST(Sim, CheckpointOverheadBlocksProcess) {
  const mp::Program p = mp::parse("program t { checkpoint; compute 1.0; }");
  SimOptions opts;
  opts.nprocs = 2;
  opts.checkpoint_overhead = 5.0;
  Engine engine(p, opts);
  const auto r = engine.run();
  EXPECT_TRUE(r.trace.completed);
  EXPECT_GE(r.trace.end_time, 6.0);
}

TEST(Sim, BarrierSynchronizesClocks) {
  const auto r = run(R"(
    program bar {
      if (rank == 0) { compute 5.0; } else { compute 1.0; }
      barrier;
      compute 1.0;
    })",
                     3);
  EXPECT_TRUE(r.trace.completed);
  // All post-barrier compute events start no earlier than the slowest
  // process reached the barrier.
  for (const auto& e : r.trace.events) {
    if (e.kind == trace::EventKind::kCompute && e.time > 5.0) {
      EXPECT_GE(e.time, 6.0 - 1e-9);
    }
  }
}

TEST(Sim, BcastRootDoesNotBlock) {
  const auto r = run(R"(
    program bc {
      if (rank == 0) { } else { compute 50.0; }
      bcast root 0 bytes 8;
      compute 1.0;
    })",
                     3);
  EXPECT_TRUE(r.trace.completed);
  // Root's post-bcast compute completes long before slow receivers join.
  double root_compute_end = 1e18;
  for (const auto& e : r.trace.events)
    if (e.kind == trace::EventKind::kCompute && e.proc == 0)
      root_compute_end = std::min(root_compute_end, e.time);
  EXPECT_LT(root_compute_end, 10.0);
}

TEST(Sim, NativeAndLoweredCollectivesSameDigest) {
  // Digests differ structurally (different statements), but both must
  // complete and produce equivalent happened-before: check completion and
  // message accounting instead.
  const mp::Program native = mp::parse(R"(
    program coll { compute 1.0; barrier; bcast root 0 bytes 16; })");
  const mp::Program lowered = mp::lower_collectives(native);
  const auto rn = sim::simulate(native, 4);
  const auto rl = sim::simulate(lowered, 4);
  EXPECT_TRUE(rn.trace.completed);
  EXPECT_TRUE(rl.trace.completed);
  // Lowered barrier: 2(n-1) msgs; lowered bcast: n-1 msgs.
  EXPECT_EQ(rl.stats.app_messages, 2 * 3 + 3);
}

TEST(Sim, SendOutOfRangeThrows) {
  const mp::Program p = mp::parse("program bad { send to nprocs; }");
  EXPECT_THROW(sim::simulate(p, 2), util::ProgramError);
}

TEST(Sim, SelfSendThrows) {
  const mp::Program p = mp::parse("program bad { send to rank; }");
  EXPECT_THROW(sim::simulate(p, 2), util::ProgramError);
}

TEST(Sim, DeadlockLeavesTraceIncomplete) {
  // Both ranks wait for a message that never comes.
  const auto r = run("program dead { recv from (rank + 1) % nprocs tag 1; }",
                     2);
  EXPECT_FALSE(r.trace.completed);
}

TEST(Sim, IrregularResolverIsDeterministic) {
  const char* source = R"(
    program irr {
      if (rank == 0) {
        for w in 1 .. nprocs { recv from any tag 1; }
      } else {
        loop irregular(1) + 1 { compute 0.5; }
        if (irregular(2) % 2 == 0) { compute 1.0; } else { compute 2.0; }
        send to 0 tag 1;
      }
    })";
  const auto a = run(source, 4, 3);
  const auto b = run(source, 4, 3);
  EXPECT_TRUE(a.trace.completed);
  EXPECT_EQ(a.trace.final_digest, b.trace.final_digest);
}

// ---------------------------------------------------------------------------
// Failure injection and recovery
// ---------------------------------------------------------------------------

constexpr const char* kRecoverable = R"(
  program rec {
    loop 4 {
      compute 2.0;
      checkpoint;
      send to (rank + 1) % nprocs tag 1;
      recv from (rank - 1 + nprocs) % nprocs tag 1;
    }
  })";

TEST(SimFailure, RecoversAndCompletes) {
  const mp::Program p = mp::parse(kRecoverable);
  SimOptions opts;
  opts.nprocs = 3;
  opts.recovery_overhead = 1.0;
  opts.failures = {{1, 5.0}};
  Engine engine(p, opts);
  const auto r = engine.run();
  EXPECT_EQ(r.stats.restarts, 1);
  EXPECT_TRUE(r.trace.completed);
}

TEST(SimFailure, DigestMatchesFailureFreeRun) {
  const mp::Program p = mp::parse(kRecoverable);
  SimOptions clean;
  clean.nprocs = 3;
  const auto base = Engine(p, clean).run();

  SimOptions faulty;
  faulty.nprocs = 3;
  faulty.recovery_overhead = 2.0;
  faulty.failures = {{0, 3.0}, {2, 11.0}};
  const auto rec = Engine(p, faulty).run();
  EXPECT_TRUE(rec.trace.completed);
  EXPECT_EQ(rec.stats.restarts, 2);
  EXPECT_EQ(rec.trace.final_digest, base.trace.final_digest);
}

TEST(SimFailure, FailureBeforeAnyCheckpointRestartsFromScratch) {
  const mp::Program p = mp::parse(R"(
    program fresh {
      compute 5.0;
      checkpoint;
      compute 1.0;
    })");
  SimOptions clean;
  clean.nprocs = 2;
  const auto base = Engine(p, clean).run();

  SimOptions faulty;
  faulty.nprocs = 2;
  faulty.failures = {{0, 2.0}};  // before the first checkpoint completes
  const auto rec = Engine(p, faulty).run();
  EXPECT_TRUE(rec.trace.completed);
  EXPECT_EQ(rec.trace.final_digest, base.trace.final_digest);
  EXPECT_GE(rec.trace.end_time, 7.0);  // the 5s compute ran twice
}

TEST(SimFailure, InTransitMessagesReplayedFromLog) {
  // Rank 0 checkpoints after sending; rank 1 checkpoints before receiving.
  // A failure in the window makes the message in-transit across the cut —
  // only the sender log can re-deliver it.
  const mp::Program p = mp::parse(R"(
    program transit {
      if (rank == 0) {
        compute 1.0;
        send to 1 tag 1;
        checkpoint;
        compute 10.0;
      } else {
        checkpoint;
        compute 10.0;
        recv from 0 tag 1;
      }
    })");
  SimOptions opts;
  opts.nprocs = 2;
  opts.failures = {{1, 6.0}};
  const auto r = Engine(p, opts).run();
  EXPECT_TRUE(r.trace.completed);
  bool replayed = false;
  for (const auto& m : r.trace.messages) replayed |= m.replayed;
  EXPECT_TRUE(replayed);
}

TEST(SimFailure, MultipleFailuresStillComplete) {
  const mp::Program p = mp::parse(kRecoverable);
  SimOptions opts;
  opts.nprocs = 4;
  opts.failures = {{0, 2.5}, {1, 6.0}, {2, 9.0}};
  const auto r = Engine(p, opts).run();
  EXPECT_TRUE(r.trace.completed);
  EXPECT_EQ(r.stats.restarts, 3);
}

TEST(SimFailure, FailureAfterCompletionIsIgnored) {
  const mp::Program p = mp::parse("program quick { compute 1.0; }");
  SimOptions opts;
  opts.nprocs = 2;
  opts.failures = {{0, 100.0}};
  const auto r = Engine(p, opts).run();
  EXPECT_TRUE(r.trace.completed);
  EXPECT_EQ(r.stats.restarts, 0);
}

}  // namespace
