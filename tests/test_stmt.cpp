// Unit tests for the statement hierarchy and Program: building, cloning,
// renumbering, traversal, location, and structural editing (the primitives
// Phase III movement is built on).
#include <gtest/gtest.h>

#include "mp/builder.h"
#include "mp/stmt.h"
#include "util/error.h"

namespace {

using namespace acfc::mp;

Program jacobi_like() {
  ProgramBuilder b("jacobi");
  b.for_("it", 0, 10, [](ProgramBuilder& b) {
    b.compute(5.0, "stencil");
    b.if_(
        Pred::eq(Expr::rank() % Expr::constant(2), Expr::constant(0)),
        [](ProgramBuilder& b) {
          b.checkpoint("even");
          b.send(Expr::rank() + Expr::constant(1), 1);
          b.recv(Expr::rank() + Expr::constant(1), 1);
        },
        [](ProgramBuilder& b) {
          b.send(Expr::rank() - Expr::constant(1), 1);
          b.recv(Expr::rank() - Expr::constant(1), 1);
          b.checkpoint("odd");
        });
  });
  return b.take();
}

TEST(Stmt, BuilderProducesExpectedShape) {
  const Program p = jacobi_like();
  ASSERT_EQ(p.body.size(), 1u);
  EXPECT_EQ(p.body.stmts[0]->kind(), StmtKind::kLoop);
  const auto& loop = static_cast<const LoopStmt&>(*p.body.stmts[0]);
  ASSERT_EQ(loop.body.size(), 2u);
  EXPECT_EQ(loop.body.stmts[0]->kind(), StmtKind::kCompute);
  EXPECT_EQ(loop.body.stmts[1]->kind(), StmtKind::kIf);
}

TEST(Stmt, RenumberAssignsPreorderUids) {
  const Program p = jacobi_like();
  // 1 loop + 1 compute + 1 if + (3 + 3) branch statements = 9.
  EXPECT_EQ(p.stmt_count(), 9);
  std::vector<int> uids;
  for_each_stmt(p, [&uids](const Stmt& s) { uids.push_back(s.uid()); });
  for (std::size_t i = 0; i < uids.size(); ++i)
    EXPECT_EQ(uids[i], static_cast<int>(i));
}

TEST(Stmt, CheckpointIdsAreDistinct) {
  const Program p = jacobi_like();
  std::vector<int> ids;
  for_each_stmt(p, [&ids](const Stmt& s) {
    if (const auto* c = dynamic_cast<const CheckpointStmt*>(&s))
      ids.push_back(c->ckpt_id);
  });
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_NE(ids[0], ids[1]);
  EXPECT_GE(ids[0], 0);
  EXPECT_GE(ids[1], 0);
}

TEST(Stmt, CheckpointCount) {
  EXPECT_EQ(checkpoint_count(jacobi_like()), 2);
}

TEST(Stmt, CloneIsDeepAndEqualShaped) {
  const Program p = jacobi_like();
  const Program q = p.clone();
  EXPECT_EQ(q.stmt_count(), p.stmt_count());
  EXPECT_EQ(checkpoint_count(q), 2);
  // Mutating the clone must not affect the original.
  Program r = p.clone();
  r.body.stmts.clear();
  EXPECT_EQ(p.stmt_count(), 9);
}

TEST(Stmt, FindByUid) {
  Program p = jacobi_like();
  const Stmt* s = p.find(1);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind(), StmtKind::kCompute);
  EXPECT_EQ(p.find(999), nullptr);
}

TEST(Stmt, LocateReportsAncestors) {
  Program p = jacobi_like();
  // uid 3 is the first checkpoint (loop=0, compute=1, if=2, chk=3).
  auto loc = locate(p, 3);
  ASSERT_TRUE(loc.has_value());
  ASSERT_EQ(loc->ancestors.size(), 2u);
  EXPECT_EQ(loc->ancestors[0]->kind(), StmtKind::kLoop);
  EXPECT_EQ(loc->ancestors[1]->kind(), StmtKind::kIf);
  EXPECT_EQ(loc->index, 0u);
}

TEST(Stmt, LocateMissingUid) {
  Program p = jacobi_like();
  EXPECT_FALSE(locate(p, 12345).has_value());
}

TEST(Stmt, RemoveAndReinsert) {
  Program p = jacobi_like();
  auto removed = remove_stmt(p, 3);  // the "even" checkpoint
  ASSERT_EQ(removed->kind(), StmtKind::kCheckpoint);
  EXPECT_EQ(checkpoint_count(p), 1);

  p.renumber();
  // Insert before the loop statement (uid 0 after renumber).
  insert_before(p, 0, std::move(removed));
  p.renumber();
  EXPECT_EQ(checkpoint_count(p), 2);
  EXPECT_EQ(p.body.stmts[0]->kind(), StmtKind::kCheckpoint);
}

TEST(Stmt, InsertAfter) {
  Program p = jacobi_like();
  insert_after(p, 1, std::make_unique<ComputeStmt>(1.0, "extra"));
  p.renumber();
  const auto& loop = static_cast<const LoopStmt&>(*p.body.stmts[0]);
  ASSERT_EQ(loop.body.size(), 3u);
  EXPECT_EQ(loop.body.stmts[1]->kind(), StmtKind::kCompute);
  EXPECT_EQ(static_cast<const ComputeStmt&>(*loop.body.stmts[1]).label,
            "extra");
}

TEST(Stmt, RemoveMissingThrows) {
  Program p = jacobi_like();
  EXPECT_THROW(remove_stmt(p, 777), acfc::util::ProgramError);
}

TEST(Stmt, InsertBeforeMissingThrows) {
  Program p = jacobi_like();
  EXPECT_THROW(insert_before(p, 777, std::make_unique<ComputeStmt>(1.0)),
               acfc::util::ProgramError);
}

TEST(Stmt, ClonePreservesCheckpointIds) {
  Program p = jacobi_like();
  std::vector<int> orig;
  for_each_stmt(p, [&orig](const Stmt& s) {
    if (const auto* c = dynamic_cast<const CheckpointStmt*>(&s))
      orig.push_back(c->ckpt_id);
  });
  const Program q = p.clone();
  std::vector<int> cloned;
  for_each_stmt(q, [&cloned](const Stmt& s) {
    if (const auto* c = dynamic_cast<const CheckpointStmt*>(&s))
      cloned.push_back(c->ckpt_id);
  });
  EXPECT_EQ(orig, cloned);
}

TEST(Stmt, AssignCheckpointIdsIsIdempotentAndFillsGaps) {
  Program p = jacobi_like();
  std::vector<int> before;
  for_each_stmt(p, [&before](const Stmt& s) {
    if (const auto* c = dynamic_cast<const CheckpointStmt*>(&s))
      before.push_back(c->ckpt_id);
  });
  p.assign_checkpoint_ids();  // no new ids
  std::vector<int> after;
  for_each_stmt(p, [&after](const Stmt& s) {
    if (const auto* c = dynamic_cast<const CheckpointStmt*>(&s))
      after.push_back(c->ckpt_id);
  });
  EXPECT_EQ(before, after);

  // A freshly inserted checkpoint gets a new id above the existing maximum.
  insert_after(p, 1, std::make_unique<CheckpointStmt>("new"));
  p.renumber();
  p.assign_checkpoint_ids();
  int fresh_id = -1;
  for_each_stmt(p, [&fresh_id](const Stmt& s) {
    if (const auto* c = dynamic_cast<const CheckpointStmt*>(&s))
      if (c->note == "new") fresh_id = c->ckpt_id;
  });
  EXPECT_GT(fresh_id, *std::max_element(before.begin(), before.end()));
}

TEST(Stmt, RecvAnyFactory) {
  auto r = RecvStmt::any(5);
  EXPECT_TRUE(r->any_source);
  EXPECT_EQ(r->tag, 5);
}

TEST(Stmt, KindNames) {
  EXPECT_STREQ(stmt_kind_name(StmtKind::kSend), "send");
  EXPECT_STREQ(stmt_kind_name(StmtKind::kCheckpoint), "checkpoint");
  EXPECT_STREQ(stmt_kind_name(StmtKind::kLoop), "for");
}

TEST(Stmt, BuilderLoopSugar) {
  ProgramBuilder b("loops");
  b.loop(3, [](ProgramBuilder& b) { b.compute(1.0); });
  b.loop(2, [](ProgramBuilder& b) { b.compute(1.0); });
  const Program p = b.take();
  ASSERT_EQ(p.body.size(), 2u);
  const auto& l0 = static_cast<const LoopStmt&>(*p.body.stmts[0]);
  const auto& l1 = static_cast<const LoopStmt&>(*p.body.stmts[1]);
  EXPECT_NE(l0.var, l1.var);  // fresh loop variables
  EXPECT_EQ(l0.hi.const_value(), 3);
}

}  // namespace
