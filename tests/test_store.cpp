// Unit tests for the stable-storage substrate: write costs in both modes,
// incremental chains and restore costs, garbage collection that never
// breaks a chain, and derived (o, l) parameters feeding the perf model.
#include <gtest/gtest.h>

#include "perf/model.h"
#include "store/store.h"
#include "util/error.h"

namespace {

using namespace acfc;
using store::CheckpointMode;
using store::StableStore;
using store::StorageModel;

StorageModel fast_model() {
  StorageModel m;
  m.write_bandwidth = 100e6;
  m.read_bandwidth = 200e6;
  m.write_latency = 0.01;
  m.read_latency = 0.01;
  m.dirty_fraction = 0.25;
  m.delta_metadata_bytes = 1000;
  m.full_every = 4;
  return m;
}

TEST(Store, FullModeWritesFullState) {
  StableStore s(fast_model(), CheckpointMode::kFull, 2);
  const auto cost = s.write_checkpoint(0, 100'000'000, 1.0);
  EXPECT_TRUE(cost.full_image);
  EXPECT_EQ(cost.bytes, 100'000'000);
  EXPECT_NEAR(cost.seconds, 0.01 + 1.0, 1e-12);
  EXPECT_EQ(s.record_count(0), 1);
  EXPECT_EQ(s.record_count(1), 0);
}

TEST(Store, IncrementalWritesDeltasAfterBase) {
  StableStore s(fast_model(), CheckpointMode::kIncremental, 1);
  const auto first = s.write_checkpoint(0, 100'000'000, 1.0);
  EXPECT_TRUE(first.full_image);
  const auto second = s.write_checkpoint(0, 100'000'000, 2.0);
  EXPECT_FALSE(second.full_image);
  EXPECT_EQ(second.bytes, 25'000'000 + 1000);
  EXPECT_LT(second.seconds, first.seconds);
}

TEST(Store, FullImageEveryK) {
  StableStore s(fast_model(), CheckpointMode::kIncremental, 1);
  std::vector<bool> fulls;
  for (int i = 0; i < 9; ++i)
    fulls.push_back(s.write_checkpoint(0, 1'000'000, i).full_image);
  // full_every = 4: full, d, d, d, full, d, d, d, full.
  EXPECT_EQ(fulls, std::vector<bool>(
                       {true, false, false, false, true, false, false,
                        false, true}));
}

TEST(Store, ChainLengthTracksDeltas) {
  StableStore s(fast_model(), CheckpointMode::kIncremental, 1);
  EXPECT_EQ(s.chain_length(0), 0);
  s.write_checkpoint(0, 1'000'000, 0.0);
  EXPECT_EQ(s.chain_length(0), 1);
  s.write_checkpoint(0, 1'000'000, 1.0);
  s.write_checkpoint(0, 1'000'000, 2.0);
  EXPECT_EQ(s.chain_length(0), 3);  // base + 2 deltas
  s.write_checkpoint(0, 1'000'000, 3.0);
  s.write_checkpoint(0, 1'000'000, 4.0);  // new full image
  EXPECT_EQ(s.chain_length(0), 1);
}

TEST(Store, RestoreCostGrowsWithChain) {
  StableStore s(fast_model(), CheckpointMode::kIncremental, 1);
  s.write_checkpoint(0, 10'000'000, 0.0);
  const double base_only = s.restore_seconds(0);
  s.write_checkpoint(0, 10'000'000, 1.0);
  s.write_checkpoint(0, 10'000'000, 2.0);
  EXPECT_GT(s.restore_seconds(0), base_only);
}

TEST(Store, FullModeRestoreReadsOneImage) {
  StableStore s(fast_model(), CheckpointMode::kFull, 1);
  s.write_checkpoint(0, 20'000'000, 0.0);
  s.write_checkpoint(0, 20'000'000, 1.0);
  EXPECT_EQ(s.chain_length(0), 1);
  EXPECT_NEAR(s.restore_seconds(0), 0.01 + 0.1, 1e-12);
}

TEST(Store, GarbageCollectionReclaimsOldImages) {
  StableStore s(fast_model(), CheckpointMode::kFull, 2);
  for (int i = 0; i < 6; ++i) {
    s.write_checkpoint(0, 1'000'000, i);
    s.write_checkpoint(1, 1'000'000, i);
  }
  const long before = s.bytes_stored();
  const long reclaimed = s.collect_garbage(2);
  EXPECT_GT(reclaimed, 0);
  EXPECT_EQ(s.bytes_stored(), before - reclaimed);
  EXPECT_EQ(s.record_count(0), 2);
  EXPECT_EQ(s.record_count(1), 2);
}

TEST(Store, GarbageCollectionPreservesChains) {
  StableStore s(fast_model(), CheckpointMode::kIncremental, 1);
  // full, d, d, d, full, d, d — keep the last 2 restore points.
  for (int i = 0; i < 7; ++i) s.write_checkpoint(0, 1'000'000, i);
  s.collect_garbage(2);
  // The 2 newest records are deltas depending on the full image at index
  // 4; everything from that full image on must survive (3 records).
  const auto records = s.records_of(0);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_TRUE(records[0].full_image);
  EXPECT_FALSE(records[1].full_image);
  EXPECT_FALSE(records[2].full_image);
  // Restore still works.
  EXPECT_GT(s.restore_seconds(0), 0.0);
}

TEST(Store, GarbageCollectionNoOpWhenFewRecords) {
  StableStore s(fast_model(), CheckpointMode::kFull, 1);
  s.write_checkpoint(0, 1'000'000, 0.0);
  EXPECT_EQ(s.collect_garbage(3), 0);
  EXPECT_EQ(s.record_count(0), 1);
}

TEST(Store, InvalidArgumentsThrow) {
  EXPECT_THROW(StableStore(fast_model(), CheckpointMode::kFull, 0),
               util::InternalError);
  StableStore s(fast_model(), CheckpointMode::kFull, 1);
  EXPECT_THROW(s.collect_garbage(0), util::InternalError);
  EXPECT_THROW(s.write_checkpoint(0, -5, 0.0), util::InternalError);
}

// ---------------------------------------------------------------------------
// Storage integrity: checksums, manifests, fault injection, verification
// ---------------------------------------------------------------------------

using store::StorageFaultPlan;

TEST(StoreIntegrity, CleanRecordsVerify) {
  StableStore s(fast_model(), CheckpointMode::kIncremental, 2);
  for (int i = 0; i < 5; ++i) s.write_checkpoint(0, 1'000'000, i);
  for (long ordinal = 1; ordinal <= 5; ++ordinal) {
    EXPECT_TRUE(s.verify_record(0, ordinal)) << ordinal;
    EXPECT_TRUE(s.chain_verifies(0, ordinal)) << ordinal;
  }
  EXPECT_EQ(s.latest_valid_index(0), 5);
  EXPECT_FALSE(s.verify_record(0, 6));   // never written
  EXPECT_FALSE(s.verify_record(1, 1));   // other process untouched
  EXPECT_EQ(s.latest_valid_index(1), 0);
  const auto scan = s.scan_restore(0);
  EXPECT_EQ(scan.ordinal, 5);
  EXPECT_EQ(scan.corrupt_skipped, 0);
  EXPECT_NEAR(scan.seconds, s.restore_seconds(0), 1e-12);
}

TEST(StoreIntegrity, TornWriteNeverVerifies) {
  StorageFaultPlan plan;
  plan.faults = {StorageFaultPlan::torn_write(0, 2)};
  StableStore s(fast_model(), CheckpointMode::kFull, 1, plan);
  for (int i = 0; i < 3; ++i) s.write_checkpoint(0, 1'000'000, i);
  EXPECT_TRUE(s.verify_record(0, 1));
  EXPECT_FALSE(s.verify_record(0, 2));
  EXPECT_TRUE(s.verify_record(0, 3));
  EXPECT_EQ(s.latest_valid_index(0), 3);  // full mode: records independent
}

TEST(StoreIntegrity, BitFlipOnBaseRotsTheWholeChain) {
  StorageFaultPlan plan;
  plan.faults = {StorageFaultPlan::bit_flip(0, 1)};  // the first full image
  StableStore s(fast_model(), CheckpointMode::kIncremental, 1, plan);
  // full_every = 4: ordinals 1 full, 2-4 deltas, 5 full, ...
  for (int i = 0; i < 6; ++i) s.write_checkpoint(0, 1'000'000, i);
  for (long ordinal = 1; ordinal <= 4; ++ordinal)
    EXPECT_FALSE(s.chain_verifies(0, ordinal)) << ordinal;
  EXPECT_TRUE(s.chain_verifies(0, 5));  // fresh full image: clean chain
  EXPECT_TRUE(s.chain_verifies(0, 6));
  EXPECT_EQ(s.latest_valid_index(0), 6);
  const auto scan = s.scan_restore(0);
  EXPECT_EQ(scan.ordinal, 6);
  EXPECT_EQ(scan.corrupt_skipped, 0);  // nothing newer than the valid chain
}

TEST(StoreIntegrity, ScanSkipsCorruptNewestAndReports) {
  StorageFaultPlan plan;
  plan.faults = {StorageFaultPlan::bit_flip(0, 4),
                 StorageFaultPlan::torn_write(0, 3)};
  StableStore s(fast_model(), CheckpointMode::kFull, 1, plan);
  for (int i = 0; i < 4; ++i) s.write_checkpoint(0, 1'000'000, i);
  EXPECT_EQ(s.latest_valid_index(0), 2);
  const auto scan = s.scan_restore(0);
  EXPECT_EQ(scan.ordinal, 2);
  EXPECT_EQ(scan.corrupt_skipped, 2);
  EXPECT_EQ(scan.chain_length, 1);
  EXPECT_GT(scan.seconds, 0.0);
}

TEST(StoreIntegrity, LostManifestEntryHidesTheRecord) {
  StorageFaultPlan plan;
  plan.faults = {StorageFaultPlan::lost_manifest_entry(0, 2)};
  StableStore s(fast_model(), CheckpointMode::kFull, 1, plan);
  for (int i = 0; i < 3; ++i) s.write_checkpoint(0, 1'000'000, i);
  EXPECT_FALSE(s.verify_record(0, 2));
  const store::Manifest manifest = s.manifest_of(0);
  for (const auto& entry : manifest.entries) EXPECT_NE(entry.ordinal, 2);
  EXPECT_EQ(manifest.entries.size(), 2u);
}

TEST(StoreIntegrity, StaleManifestHealsOnNextPublish) {
  StorageFaultPlan plan;
  plan.faults = {StorageFaultPlan::stale_manifest(0, 2)};
  StableStore s(fast_model(), CheckpointMode::kFull, 1, plan);
  s.write_checkpoint(0, 1'000'000, 0.0);
  const long version_before = s.manifest_of(0).version;
  s.write_checkpoint(0, 1'000'000, 1.0);
  // Publish failed: the live manifest still only covers ordinal 1.
  EXPECT_FALSE(s.verify_record(0, 2));
  EXPECT_EQ(s.latest_valid_index(0), 1);
  EXPECT_EQ(s.manifest_of(0).version, version_before);
  // The next write's publish covers it: the fault heals.
  s.write_checkpoint(0, 1'000'000, 2.0);
  EXPECT_TRUE(s.verify_record(0, 2));
  EXPECT_EQ(s.latest_valid_index(0), 3);
  EXPECT_GT(s.manifest_of(0).version, version_before);
}

TEST(StoreIntegrity, ManifestRoundTrips) {
  StableStore s(fast_model(), CheckpointMode::kIncremental, 2);
  for (int i = 0; i < 5; ++i) s.write_checkpoint(1, 2'000'000, i);
  const store::Manifest manifest = s.manifest_of(1);
  const std::string encoded = store::encode_manifest(manifest);
  const auto parsed = store::parse_manifest(encoded);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->proc, manifest.proc);
  EXPECT_EQ(parsed->version, manifest.version);
  ASSERT_EQ(parsed->entries.size(), manifest.entries.size());
  for (size_t i = 0; i < manifest.entries.size(); ++i) {
    EXPECT_EQ(parsed->entries[i].ordinal, manifest.entries[i].ordinal);
    EXPECT_EQ(parsed->entries[i].bytes, manifest.entries[i].bytes);
    EXPECT_EQ(parsed->entries[i].full_image,
              manifest.entries[i].full_image);
    EXPECT_EQ(parsed->entries[i].checksum, manifest.entries[i].checksum);
  }
}

TEST(StoreIntegrity, GcNeverUnchainsTheDegradedFallbackTarget) {
  // Records 1..4, the two newest rotten: a degraded restore falls back to
  // ordinal 2. collect_garbage(1) must keep it restorable — corrupt
  // records do not count against the keep quota.
  StorageFaultPlan plan;
  plan.faults = {StorageFaultPlan::bit_flip(0, 3),
                 StorageFaultPlan::bit_flip(0, 4)};
  StableStore s(fast_model(), CheckpointMode::kFull, 1, plan);
  for (int i = 0; i < 4; ++i) s.write_checkpoint(0, 1'000'000, i);
  ASSERT_EQ(s.latest_valid_index(0), 2);
  s.collect_garbage(1);
  EXPECT_EQ(s.latest_valid_index(0), 2);
  const auto scan = s.scan_restore(0);
  EXPECT_EQ(scan.ordinal, 2);
  EXPECT_GT(scan.seconds, 0.0);  // restore still possible — chain intact
}

TEST(StoreIntegrity, GcKeepsIncrementalChainOfTheFallbackTarget) {
  // Incremental: ordinals 1 full, 2-4 deltas, 5 full, 6-7 deltas; rot the
  // second full image and everything after — the fallback target is the
  // delta at ordinal 4, whose chain reaches back to ordinal 1. GC with
  // keep_last=1 must keep ordinals 1-4.
  StorageFaultPlan plan;
  plan.faults = {StorageFaultPlan::bit_flip(0, 5),
                 StorageFaultPlan::torn_write(0, 6),
                 StorageFaultPlan::bit_flip(0, 7)};
  StableStore s(fast_model(), CheckpointMode::kIncremental, 1, plan);
  for (int i = 0; i < 7; ++i) s.write_checkpoint(0, 1'000'000, i);
  ASSERT_EQ(s.latest_valid_index(0), 4);
  s.collect_garbage(1);
  EXPECT_EQ(s.latest_valid_index(0), 4);
  const auto records = s.records_of(0);
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(records.front().ordinal, 1);  // the chain base survived
  EXPECT_TRUE(records.front().full_image);
  EXPECT_EQ(s.scan_restore(0).ordinal, 4);
}

TEST(StoreIntegrity, RestoreOfCollectedRecordThrows) {
  StableStore s(fast_model(), CheckpointMode::kFull, 1);
  for (int i = 0; i < 5; ++i) s.write_checkpoint(0, 1'000'000, i);
  s.collect_garbage(1);
  EXPECT_THROW(s.restore_seconds(0, 1), util::InternalError);
  EXPECT_THROW(s.restore_seconds(0, 99), util::InternalError);
  EXPECT_FALSE(s.verify_record(0, 1));  // collected: no longer verifiable
}

TEST(StoreIntegrity, InvalidFaultPlansRejected) {
  StorageFaultPlan bad_proc;
  bad_proc.faults = {StorageFaultPlan::bit_flip(3, 1)};
  EXPECT_THROW(StableStore(fast_model(), CheckpointMode::kFull, 2, bad_proc),
               util::InternalError);
  StorageFaultPlan bad_ordinal;
  bad_ordinal.faults = {StorageFaultPlan::bit_flip(0, 0)};
  EXPECT_THROW(
      StableStore(fast_model(), CheckpointMode::kFull, 2, bad_ordinal),
      util::InternalError);
}

// ---------------------------------------------------------------------------
// Derived parameters → perf model
// ---------------------------------------------------------------------------

TEST(StoreDerive, FullSynchronous) {
  const auto d = store::derive_checkpoint_params(
      fast_model(), CheckpointMode::kFull, 100'000'000);
  EXPECT_NEAR(d.latency, 0.01 + 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(d.overhead, d.latency);
}

TEST(StoreDerive, AsyncDrainShrinksOverheadNotLatency) {
  const auto d = store::derive_checkpoint_params(
      fast_model(), CheckpointMode::kFull, 100'000'000, /*async=*/true);
  EXPECT_NEAR(d.overhead, 0.01, 1e-12);
  EXPECT_NEAR(d.latency, 1.01, 1e-12);
}

TEST(StoreDerive, IncrementalAveragesCheaper) {
  const auto full = store::derive_checkpoint_params(
      fast_model(), CheckpointMode::kFull, 100'000'000);
  const auto inc = store::derive_checkpoint_params(
      fast_model(), CheckpointMode::kIncremental, 100'000'000);
  EXPECT_LT(inc.latency, full.latency);
}

TEST(StoreDerive, FeedsOverheadModel) {
  // Derived o/l plug straight into the Section-4 model: a bigger state
  // means a bigger o and thus a bigger overhead ratio.
  perf::ModelParams small = perf::params_for(proto::Protocol::kAppDriven, 32);
  perf::ModelParams large = small;
  const auto d_small = store::derive_checkpoint_params(
      fast_model(), CheckpointMode::kFull, 10'000'000);
  const auto d_large = store::derive_checkpoint_params(
      fast_model(), CheckpointMode::kFull, 1'000'000'000);
  small.o = d_small.overhead;
  small.l = d_small.latency;
  large.o = d_large.overhead;
  large.l = d_large.latency;
  EXPECT_LT(perf::overhead_ratio(small), perf::overhead_ratio(large));
}

// ---------------------------------------------------------------------------
// Manifest publication batching (set_manifest_batch / flush_manifests)
// ---------------------------------------------------------------------------

TEST(ManifestBatch, CoalescesPublishes) {
  StableStore s(fast_model(), CheckpointMode::kFull, 1);
  s.set_manifest_batch(3);
  const long version0 = s.manifest_of(0).version;
  s.write_checkpoint(0, 1'000'000, 0.0);
  s.write_checkpoint(0, 1'000'000, 1.0);
  // Two writes into a window of three: nothing published, the records are
  // written but not yet visible to restore (write-then-publish intact).
  EXPECT_EQ(s.manifest_of(0).version, version0);
  EXPECT_FALSE(s.verify_record(0, 1));
  EXPECT_EQ(s.latest_valid_index(0), 0);
  EXPECT_EQ(s.record_count(0), 2);
  // The third write fills the window: ONE publish covers all three.
  s.write_checkpoint(0, 1'000'000, 2.0);
  EXPECT_EQ(s.manifest_of(0).version, version0 + 1);
  EXPECT_TRUE(s.verify_record(0, 1));
  EXPECT_TRUE(s.verify_record(0, 3));
  EXPECT_EQ(s.latest_valid_index(0), 3);
  EXPECT_EQ(s.manifest_of(0).entries.size(), 3u);
}

TEST(ManifestBatch, FlushPublishesTheTail) {
  StableStore s(fast_model(), CheckpointMode::kIncremental, 2);
  s.set_manifest_batch(4);
  for (int i = 0; i < 6; ++i) s.write_checkpoint(0, 1'000'000, i);
  // 6 = one full window (published) + 2 pending.
  EXPECT_EQ(s.latest_valid_index(0), 4);
  s.flush_manifests();
  EXPECT_EQ(s.latest_valid_index(0), 6);
  // Proc 1 never wrote: flush must not have touched its manifest.
  EXPECT_EQ(s.manifest_of(1).version, 0);
  // Nothing pending now — a second flush is a no-op.
  const long version = s.manifest_of(0).version;
  s.flush_manifests();
  EXPECT_EQ(s.manifest_of(0).version, version);
}

TEST(ManifestBatch, BatchOfOneIsClassicPublishPerWrite) {
  StableStore classic(fast_model(), CheckpointMode::kFull, 1);
  StableStore batched(fast_model(), CheckpointMode::kFull, 1);
  batched.set_manifest_batch(1);
  for (int i = 0; i < 5; ++i) {
    classic.write_checkpoint(0, 1'000'000, i);
    batched.write_checkpoint(0, 1'000'000, i);
    EXPECT_EQ(batched.manifest_of(0).version, classic.manifest_of(0).version);
    EXPECT_EQ(batched.latest_valid_index(0), classic.latest_valid_index(0));
  }
  EXPECT_EQ(batched.digest(), classic.digest());
}

TEST(ManifestBatch, StaleFaultFailsTheCoveringPublish) {
  // The stale fault is declared against write ordinal 2, but with a window
  // of 2 the publish ATTEMPT that first covers ordinal 2 happens at write
  // 2 (window boundary) — it fails, hiding ordinals 1-2 until the next
  // boundary at write 4 publishes over them.
  StorageFaultPlan plan;
  plan.faults = {StorageFaultPlan::stale_manifest(0, 2)};
  StableStore s(fast_model(), CheckpointMode::kFull, 1, plan);
  s.set_manifest_batch(2);
  s.write_checkpoint(0, 1'000'000, 0.0);
  s.write_checkpoint(0, 1'000'000, 1.0);
  EXPECT_EQ(s.latest_valid_index(0), 0);
  EXPECT_EQ(s.manifest_of(0).version, 0);
  s.write_checkpoint(0, 1'000'000, 2.0);
  s.write_checkpoint(0, 1'000'000, 3.0);
  EXPECT_EQ(s.latest_valid_index(0), 4);
  EXPECT_TRUE(s.verify_record(0, 2));
}

TEST(ManifestBatch, PayloadPathBatchesIdentically) {
  // write_payload shares the publish bookkeeping with write_checkpoint.
  StableStore s(fast_model(), CheckpointMode::kIncremental, 1);
  s.set_manifest_batch(2);
  s.write_payload(0, "state one", 0.0);
  EXPECT_EQ(s.latest_valid_index(0), 0);
  EXPECT_FALSE(s.restore_latest_payload(0).has_value());
  s.write_payload(0, "state two", 1.0);
  EXPECT_EQ(s.latest_valid_index(0), 2);
  EXPECT_EQ(s.restore_latest_payload(0), "state two");
  s.write_payload(0, "state three", 2.0);
  s.flush_manifests();
  EXPECT_EQ(s.restore_latest_payload(0), "state three");
}

TEST(ManifestBatch, InvalidBatchRejected) {
  EXPECT_THROW(
      {
        StableStore s(fast_model(), CheckpointMode::kFull, 1);
        s.set_manifest_batch(0);
      },
      util::InternalError);
}

}  // namespace
