// Unit tests for variable substitution and Phase-I loop blocking:
// substitution correctness (including shadowing), the blocked-loop
// structure, and semantic equivalence of the blocked program (identical
// execution digests modulo the inserted checkpoints' effect on clocks).
#include <gtest/gtest.h>

#include "mp/parser.h"
#include "mp/printer.h"
#include "mp/subst.h"
#include "place/place.h"
#include "sim/engine.h"
#include "trace/analysis.h"

namespace {

using namespace acfc;
using mp::Expr;
using mp::Pred;

TEST(Subst, ReplacesVariableInExpr) {
  const Expr e = Expr::loop_var("i") + Expr::constant(1);
  const Expr r = mp::substitute(e, "i", Expr::rank());
  EXPECT_EQ(r.str(), "rank + 1");
}

TEST(Subst, LeavesOtherVariables) {
  const Expr e = Expr::loop_var("i") * Expr::loop_var("j");
  const Expr r = mp::substitute(e, "i", Expr::constant(5));
  EXPECT_EQ(r.str(), "5 * j");
}

TEST(Subst, AllExprKinds) {
  const Expr v = Expr::loop_var("x");
  const Expr two = Expr::constant(2);
  EXPECT_EQ(mp::substitute(v - two, "x", Expr::rank()).str(), "rank - 2");
  EXPECT_EQ(mp::substitute(v / two, "x", Expr::rank()).str(), "rank / 2");
  EXPECT_EQ(mp::substitute(v % two, "x", Expr::rank()).str(), "rank % 2");
  EXPECT_EQ(mp::substitute(Expr::irregular(1), "x", Expr::rank()).str(),
            "irregular(1)");
}

TEST(Subst, Predicates) {
  const Pred p = Pred::lt(Expr::loop_var("w"), Expr::nprocs()) &&
                 !Pred::eq(Expr::loop_var("w"), Expr::rank());
  const Pred r = mp::substitute(p, "w", Expr::constant(3));
  EXPECT_EQ(r.str(), "(3 < nprocs && !(3 == rank))");
}

TEST(Subst, BlockRewritesAllSites) {
  mp::Program p = mp::parse(R"(
    program s {
      for i in 0 .. 4 {
        send to i tag 1;
        recv from i tag 2;
        if (i == rank) { compute 1.0; }
        bcast root i;
      }
    })");
  auto& loop = static_cast<mp::LoopStmt&>(*p.body.stmts[0]);
  mp::substitute_in_block(loop.body, "i", Expr::constant(7));
  const std::string text = mp::print(p);
  EXPECT_NE(text.find("send to 7"), std::string::npos);
  EXPECT_NE(text.find("recv from 7"), std::string::npos);
  EXPECT_NE(text.find("7 == rank"), std::string::npos);
  EXPECT_NE(text.find("bcast root 7"), std::string::npos);
}

TEST(Subst, ShadowingStopsSubstitution) {
  mp::Program p = mp::parse(R"(
    program s {
      for i in 0 .. 4 {
        send to i tag 1;
        for i in 0 .. 2 { send to i tag 2; }
      }
    })");
  auto& outer = static_cast<mp::LoopStmt&>(*p.body.stmts[0]);
  mp::substitute_in_block(outer.body, "i", Expr::constant(9));
  const std::string text = mp::print(p);
  EXPECT_NE(text.find("send to 9 tag 1"), std::string::npos);
  // The inner loop rebinds i: its body must be untouched.
  EXPECT_NE(text.find("send to i tag 2"), std::string::npos);
}

TEST(Subst, NestedLoopBoundsAreRewritten) {
  mp::Program p = mp::parse(R"(
    program s { for i in 0 .. 4 { for j in 0 .. i { compute 1.0; } } })");
  auto& outer = static_cast<mp::LoopStmt&>(*p.body.stmts[0]);
  mp::substitute_in_block(outer.body, "i", Expr::constant(3));
  const auto& inner = static_cast<const mp::LoopStmt&>(*outer.body.stmts[0]);
  EXPECT_EQ(inner.hi.const_value(), 3);
}

// ---------------------------------------------------------------------------
// Loop blocking
// ---------------------------------------------------------------------------

TEST(LoopBlocking, SplitsCheapLongLoop) {
  mp::Program p = mp::parse("program b { loop 12 { compute 15.0; } }");
  place::InsertOptions opts;
  opts.target_interval = 45.0;
  const int inserted = place::insert_checkpoints(p, opts);
  EXPECT_EQ(inserted, 1);  // one checkpoint statement, inside the blocks
  // Structure: outer loop of 4 blocks × (inner 3 iterations + checkpoint).
  ASSERT_EQ(p.body.size(), 1u);
  const auto& outer = static_cast<const mp::LoopStmt&>(*p.body.stmts[0]);
  EXPECT_EQ(outer.hi.const_value(), 4);
  ASSERT_EQ(outer.body.size(), 2u);
  const auto& inner = static_cast<const mp::LoopStmt&>(*outer.body.stmts[0]);
  EXPECT_EQ(inner.hi.const_value(), 3);
  EXPECT_EQ(outer.body.stmts[1]->kind(), mp::StmtKind::kCheckpoint);
}

TEST(LoopBlocking, TailHandlesRemainder) {
  mp::Program p = mp::parse("program b { loop 13 { compute 15.0; } }");
  place::InsertOptions opts;
  opts.target_interval = 45.0;
  place::insert_checkpoints(p, opts);
  // 13 = 4×3 + 1: outer blocked loop plus a 1-iteration tail loop.
  ASSERT_EQ(p.body.size(), 2u);
  const auto& tail = static_cast<const mp::LoopStmt&>(*p.body.stmts[1]);
  EXPECT_EQ(tail.hi.const_value(), 1);
}

TEST(LoopBlocking, DisabledLeavesLoopAtomic) {
  mp::Program p = mp::parse("program b { loop 12 { compute 15.0; } }");
  place::InsertOptions opts;
  opts.target_interval = 45.0;
  opts.enable_loop_blocking = false;
  place::insert_checkpoints(p, opts);
  EXPECT_EQ(p.body.stmts[0]->kind(), mp::StmtKind::kLoop);
  const auto& loop = static_cast<const mp::LoopStmt&>(*p.body.stmts[0]);
  EXPECT_EQ(loop.hi.const_value(), 12);  // untouched
}

TEST(LoopBlocking, RewritesLoopVariableUses) {
  // The body sends to a neighbour selected by the loop variable's parity;
  // after blocking, the rewritten affine expression must preserve the
  // exact iteration sequence — validated by simulation below.
  mp::Program p = mp::parse(R"(
    program b {
      for i in 0 .. 12 {
        compute 15.0;
        if (i % 2 == 0) {
          send to (rank + 1) % nprocs tag 1;
          recv from (rank - 1 + nprocs) % nprocs tag 1;
        } else {
          send to (rank - 1 + nprocs) % nprocs tag 2;
          recv from (rank + 1) % nprocs tag 2;
        }
      }
    })");
  // Reference run (no checkpoints).
  const auto base = sim::simulate(p, 4, 1);
  ASSERT_TRUE(base.trace.completed);

  place::InsertOptions opts;
  opts.target_interval = 45.0;
  place::insert_checkpoints(p, opts);
  const auto blocked = sim::simulate(p, 4, 1);
  ASSERT_TRUE(blocked.trace.completed);
  // Identical message structure: same app message count, and per-channel
  // tag sequences agree (checkpoints do not send).
  EXPECT_EQ(blocked.stats.app_messages, base.stats.app_messages);
  auto tags = [](const trace::Trace& t) {
    std::vector<int> out;
    for (const auto& m : t.app_messages()) out.push_back(m.tag);
    return out;
  };
  EXPECT_EQ(tags(blocked.trace), tags(base.trace));
}

TEST(LoopBlocking, BlockedProgramIsSafeAfterPipeline) {
  mp::Program p = mp::parse(R"(
    program b {
      for i in 0 .. 12 {
        compute 15.0;
        send to (rank + 1) % nprocs tag 1;
        recv from (rank - 1 + nprocs) % nprocs tag 1;
      }
    })");
  place::InsertOptions opts;
  opts.target_interval = 45.0;
  const auto report = place::analyze_and_place(p, opts);
  ASSERT_TRUE(report.success);
  const auto result = sim::simulate(p, 4, 1);
  ASSERT_TRUE(result.trace.completed);
  int cuts = 0;
  for (const auto& cut : trace::all_straight_cuts(result.trace)) {
    ++cuts;
    EXPECT_TRUE(trace::analyze_cut(result.trace, cut).consistent);
  }
  EXPECT_GE(cuts, 3);  // blocking actually produced per-block checkpoints
}

TEST(LoopBlocking, SkipsNonConstantBounds) {
  mp::Program p = mp::parse(
      "program b { for i in 0 .. nprocs { compute 15.0; } }");
  place::InsertOptions opts;
  opts.target_interval = 45.0;
  opts.assumed_trip_count = 12;
  place::insert_checkpoints(p, opts);
  // Bounds are not constant: loop stays atomic, checkpoint lands after.
  EXPECT_EQ(p.body.stmts[0]->kind(), mp::StmtKind::kLoop);
  const auto& loop = static_cast<const mp::LoopStmt&>(*p.body.stmts[0]);
  EXPECT_TRUE(loop.hi.equals(mp::Expr::nprocs()));
}

}  // namespace
