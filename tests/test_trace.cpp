// Unit tests for the trace analyses: cut consistency (orphans /
// in-transit), straight cuts, maximal recovery lines, rollback-dependency
// graphs, and zigzag (useless-checkpoint) detection — exercised on real
// simulated executions.
#include <gtest/gtest.h>

#include "mp/parser.h"
#include "sim/engine.h"
#include "trace/analysis.h"

namespace {

using namespace acfc;
using trace::analyze_cut;
using trace::Cut;
using trace::Trace;

Trace run(const std::string& source, int nprocs) {
  const mp::Program p = mp::parse(source);
  auto result = sim::simulate(p, nprocs);
  EXPECT_TRUE(result.trace.completed);
  return std::move(result.trace);
}

// Misaligned Jacobi (paper Figure 2): even checkpoints before the
// exchange, odd after.
constexpr const char* kMisaligned = R"(
  program mis {
    loop 3 {
      compute 1.0;
      if (rank % 2 == 0) {
        checkpoint "even";
        if (rank + 1 < nprocs) {
          send to rank + 1 tag 1;
          recv from rank + 1 tag 1;
        }
      } else {
        send to rank - 1 tag 1;
        recv from rank - 1 tag 1;
        checkpoint "odd";
      }
    }
  })";

// Aligned Jacobi (paper Figure 1).
constexpr const char* kAligned = R"(
  program ali {
    loop 3 {
      checkpoint;
      compute 1.0;
      if (rank % 2 == 0) {
        if (rank + 1 < nprocs) {
          send to rank + 1 tag 1;
          recv from rank + 1 tag 1;
        }
      } else {
        send to rank - 1 tag 1;
        recv from rank - 1 tag 1;
      }
    }
  })";

TEST(TraceCut, InitialCutIsConsistent) {
  const Trace t = run("program t { compute 1.0; }", 2);
  Cut cut;
  cut.member = {-1, -1};
  EXPECT_TRUE(analyze_cut(t, cut).consistent);
}

TEST(TraceCut, MisalignedStraightCutsInconsistent) {
  // Paper Figure 3: the straight cuts of the misaligned program are not
  // recovery lines.
  const Trace t = run(kMisaligned, 2);
  const auto cuts = trace::all_straight_cuts(t);
  ASSERT_FALSE(cuts.empty());
  int inconsistent = 0;
  for (const auto& cut : cuts) {
    const auto a = analyze_cut(t, cut);
    if (!a.consistent) {
      ++inconsistent;
      EXPECT_FALSE(a.orphan_msgs.empty());
    }
  }
  EXPECT_GT(inconsistent, 0);
}

TEST(TraceCut, AlignedStraightCutsConsistent) {
  const Trace t = run(kAligned, 4);
  const auto cuts = trace::all_straight_cuts(t);
  ASSERT_EQ(cuts.size(), 3u);  // one per iteration
  for (const auto& cut : cuts) EXPECT_TRUE(analyze_cut(t, cut).consistent);
}

TEST(TraceCut, StraightCutMissingInstanceIsNull) {
  const Trace t = run(kAligned, 2);
  EXPECT_TRUE(trace::straight_cut(t, 1, 0).has_value());
  EXPECT_FALSE(trace::straight_cut(t, 1, 99).has_value());
  EXPECT_FALSE(trace::straight_cut(t, 7, 0).has_value());
}

TEST(TraceCut, InTransitDetection) {
  // Sender checkpoints after send; receiver checkpoints before its recv
  // (which happens much later): the message crosses the cut.
  const Trace t = run(R"(
    program transit {
      if (rank == 0) {
        send to 1 tag 1;
        checkpoint;
      } else {
        checkpoint;
        compute 5.0;
        recv from 0 tag 1;
      }
    })",
                      2);
  const auto cut = trace::straight_cut(t, 1, 0);
  ASSERT_TRUE(cut.has_value());
  const auto a = analyze_cut(t, *cut);
  EXPECT_TRUE(a.consistent);  // in-transit does not break consistency
  EXPECT_EQ(a.in_transit_msgs.size(), 1u);
}

TEST(TraceCut, LatestCutAtTime) {
  const Trace t = run(kAligned, 2);
  // kAligned checkpoints instantly at t=0, so query strictly before that.
  const Cut early = trace::latest_cut_at(t, -1.0);
  for (const int m : early.member) EXPECT_EQ(m, -1);
  const Cut late = trace::latest_cut_at(t, t.end_time + 1.0);
  for (const int m : late.member) EXPECT_GE(m, 0);
}

TEST(TraceRecovery, AlignedRollsBackToLatest) {
  const Trace t = run(kAligned, 4);
  // Fail right at the end: every process restores its latest checkpoint
  // without extra rollback... the latest checkpoints may straddle one
  // iteration boundary; demotion is bounded by one instance.
  const auto line = trace::max_recovery_line(t, t.end_time + 1.0);
  EXPECT_TRUE(line.consistent);
  for (const int r : line.rollbacks) EXPECT_LE(r, 1);
}

TEST(TraceRecovery, MisalignedNeedsDemotion) {
  const Trace t = run(kMisaligned, 2);
  // Pick a failure time right after an even checkpoint completes but
  // before the odd one: the greedy demotion must still find a consistent
  // line.
  for (double frac : {0.3, 0.5, 0.7, 0.9}) {
    const auto line = trace::max_recovery_line(t, frac * t.end_time);
    EXPECT_TRUE(line.consistent);
  }
}

TEST(TraceRecovery, EmptyHistoryFallsBackToInitial) {
  const Trace t = run("program t { compute 5.0; }", 3);
  const auto line = trace::max_recovery_line(t, 1.0);
  EXPECT_TRUE(line.consistent);
  for (const int m : line.cut.member) EXPECT_EQ(m, -1);
}

TEST(TraceRecovery, FailureAtTimeZeroRestoresInitialStates) {
  // Nothing can be committed at t = 0 (kMisaligned's first checkpoints
  // commit only after the first compute): the line is the all-initial
  // cut with zero demotions and zero lost work.
  const Trace t = run(kMisaligned, 4);
  const auto line = trace::max_recovery_line(t, 0.0);
  EXPECT_TRUE(line.consistent);
  for (const int m : line.cut.member) EXPECT_EQ(m, -1);
  for (const int r : line.rollbacks) EXPECT_EQ(r, 0);
  EXPECT_EQ(line.lost_work, 0.0);
}

TEST(TraceRecovery, FailureAfterFinalCheckpointUsesTailCheckpoints) {
  // A failure long after the last checkpoint commit: every member is that
  // process's final checkpoint, and the lost work grows with the gap
  // (tail work past the last checkpoint is lost too).
  const Trace t = run(kAligned, 4);
  const auto line = trace::max_recovery_line(t, t.end_time + 100.0);
  EXPECT_TRUE(line.consistent);
  for (size_t p = 0; p < line.cut.member.size(); ++p) {
    ASSERT_GE(line.cut.member[p], 0) << "process " << p;
    // No committed checkpoint of p may postdate the chosen member.
    const auto& chosen =
        t.checkpoints[static_cast<size_t>(line.cut.member[p])];
    for (const auto& c : t.checkpoints)
      if (c.proc == static_cast<int>(p) &&
          line.rollbacks[p] == 0)  // latest-checkpoint member
        EXPECT_LE(c.t_commit, chosen.t_commit + 1e-12);
  }
  EXPECT_GT(line.lost_work, 0.0);
}

TEST(TraceRecovery, ProcessThatNeverCheckpointsDragsPeersBack) {
  // Process 1 never checkpoints, so its member is always the initial
  // state; greedy demotion must drag any peer checkpoint that received
  // from it below the orphan horizon while staying consistent.
  const Trace t = run(R"(
    program lopsided {
      loop 3 {
        compute 1.0;
        if (rank == 0) {
          checkpoint;
          recv from 1 tag 1;
        }
        if (rank == 1) {
          send to 0 tag 1;
        }
      }
    })", 2);
  for (const double frac : {0.4, 0.8, 1.1}) {
    const auto line = trace::max_recovery_line(t, frac * t.end_time);
    EXPECT_TRUE(line.consistent);
    EXPECT_EQ(line.cut.member[1], -1);  // nothing stored, ever
    // Consistency re-check: the chosen cut really has no orphans.
    EXPECT_TRUE(analyze_cut(t, line.cut).consistent);
    // Process 0's checkpoint at iteration i has consumed i messages that
    // all postdate 1's (initial) cut state, so any member past iteration
    // 0 would orphan them: the greedy demotion must land on the
    // receive-free first checkpoint or the initial state.
    if (line.cut.member[0] >= 0) {
      const auto& chosen =
          t.checkpoints[static_cast<size_t>(line.cut.member[0])];
      for (const auto& c : t.checkpoints)
        if (c.proc == 0) EXPECT_LE(chosen.t_commit, c.t_commit + 1e-12);
    }
    // Once the whole run is visible, the latest checkpoint (iteration 2,
    // two consumed messages) must be demoted at least once.
    if (frac > 1.0) EXPECT_GE(line.rollbacks[0], 1);
  }
}

TEST(TraceRGraph, EdgesFollowMessages) {
  const Trace t = run(R"(
    program rg {
      if (rank == 0) {
        checkpoint;
        send to 1 tag 1;
      } else {
        recv from 0 tag 1;
        checkpoint;
      }
    })",
                      2);
  const auto g = trace::build_rgraph(t);
  EXPECT_EQ(g.nprocs, 2);
  // Proc 0: 1 checkpoint → 2 intervals; message sent in interval 1 of
  // proc 0 (after its checkpoint), received in interval 0 of proc 1.
  ASSERT_EQ(g.edges.size(), 1u);
  EXPECT_EQ(g.edges[0].from_proc, 0);
  EXPECT_EQ(g.edges[0].from_interval, 1);
  EXPECT_EQ(g.edges[0].to_proc, 1);
  EXPECT_EQ(g.edges[0].to_interval, 0);
}

TEST(TraceZigzag, AlignedCheckpointsAreUseful) {
  const Trace t = run(kAligned, 4);
  EXPECT_TRUE(trace::useless_checkpoints(t).empty());
}

TEST(TraceZigzag, MiddleCheckpointOnZCycleIsUseless) {
  // The classic Netzer–Xu construction: rank 1's checkpoint sits between
  // recv(m1) and send(m2), where m1 was sent after rank 0's first
  // checkpoint and m2 is received before rank 0's second. Every cut
  // containing it is inconsistent.
  const Trace t = run(R"(
    program zz {
      if (rank == 0) {
        checkpoint "c1a";
        send to 1 tag 1;
        recv from 1 tag 2;
        checkpoint "c1b";
      } else {
        recv from 0 tag 1;
        checkpoint "c2";
        send to 0 tag 2;
      }
    })",
                      2);
  const auto useless = trace::useless_checkpoints(t);
  ASSERT_EQ(useless.size(), 1u);
  EXPECT_EQ(t.checkpoints[static_cast<size_t>(useless[0])].proc, 1);
  // And indeed the straddling cuts are inconsistent.
  Cut cut;
  // c1a is rank 0's first checkpoint, c2 is rank 1's only one.
  int c1a = -1, c2 = -1;
  for (size_t i = 0; i < t.checkpoints.size(); ++i) {
    if (t.checkpoints[i].proc == 0 && c1a < 0) c1a = static_cast<int>(i);
    if (t.checkpoints[i].proc == 1) c2 = static_cast<int>(i);
  }
  cut.member = {c1a, c2};
  EXPECT_FALSE(analyze_cut(t, cut).consistent);
}

TEST(TraceZigzag, SequentialMessagesNoCycle) {
  const Trace t = run(R"(
    program seq {
      if (rank == 0) {
        checkpoint;
        send to 1 tag 1;
      } else {
        recv from 0 tag 1;
        checkpoint;
      }
    })",
                      2);
  EXPECT_TRUE(trace::useless_checkpoints(t).empty());
}

TEST(TraceMisc, SummaryMentionsCounts) {
  const Trace t = run(kAligned, 2);
  const std::string s = t.summary();
  EXPECT_NE(s.find("2 procs"), std::string::npos);
  EXPECT_NE(s.find("completed"), std::string::npos);
}

TEST(TraceMisc, CheckpointsOfFiltersByProc) {
  const Trace t = run(kAligned, 3);
  const auto c0 = t.checkpoints_of(0);
  EXPECT_EQ(c0.size(), 3u);
  for (const auto& c : c0) EXPECT_EQ(c.proc, 0);
}

}  // namespace
