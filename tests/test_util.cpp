// Unit tests for the util substrate: RNG determinism and distributions,
// summary statistics, percentiles, histograms, tables, and DOT emission.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/dot.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using acfc::util::DotGraph;
using acfc::util::Histogram;
using acfc::util::percentile;
using acfc::util::Rng;
using acfc::util::Summary;
using acfc::util::Table;

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, CopyPreservesStream) {
  Rng a(7);
  a.next_u64();
  Rng snapshot = a;  // as the simulator does at checkpoint time
  std::vector<std::uint64_t> from_a, from_snapshot;
  for (int i = 0; i < 10; ++i) from_a.push_back(a.next_u64());
  for (int i = 0; i < 10; ++i) from_snapshot.push_back(snapshot.next_u64());
  EXPECT_EQ(from_a, from_snapshot);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(17, 17), 17);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::vector<int> seen(4, 0);
  for (int i = 0; i < 4000; ++i)
    ++seen[static_cast<std::size_t>(rng.uniform_int(0, 3))];
  for (int count : seen) EXPECT_GT(count, 700);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ExponentialMeanApproximatesInverseRate) {
  Rng rng(9);
  Summary s;
  for (int i = 0; i < 20000; ++i) s.add(rng.exponential(2.0));
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), acfc::util::InternalError);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.bernoulli(0.25)) ++hits;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng child = a.split();
  EXPECT_FALSE(a == child);
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Summary, EmptyThrowsOnMean) {
  Summary s;
  EXPECT_THROW(s.mean(), acfc::util::InternalError);
}

TEST(Summary, SingleValueZeroVariance) {
  Summary s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Percentile, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(Percentile, Interpolates) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25.0), 2.5);
}

TEST(Percentile, Extremes) {
  std::vector<double> data{5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(data, 100.0), 9.0);
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(9.5);
  h.add(-3.0);  // clamps into first bucket
  h.add(42.0);  // clamps into last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 4.0);
}

TEST(Histogram, RenderHasOneLinePerBucket) {
  Histogram h(0.0, 1.0, 3);
  h.add(0.1);
  EXPECT_EQ(h.render().size(), 3u);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), acfc::util::InternalError);
}

TEST(Table, CsvEscapesSpecialCells) {
  Table t({"x"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  std::ostringstream os;
  t.write_csv(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(text.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, NumericRowFormatting) {
  Table t({"v"});
  t.add_row_numeric({3.14159265}, 3);
  EXPECT_EQ(t.row(0)[0], "3.14");
}

TEST(Dot, EmitsNodesAndEdges) {
  DotGraph g("test");
  g.add_node("a", "entry");
  g.add_node("b", "exit");
  g.add_edge("a", "b", "style=dashed");
  const std::string text = g.str();
  EXPECT_NE(text.find("digraph"), std::string::npos);
  EXPECT_NE(text.find("\"a\" -> \"b\""), std::string::npos);
  EXPECT_NE(text.find("style=dashed"), std::string::npos);
}

TEST(Dot, EscapesQuotesInLabels) {
  DotGraph g("test");
  g.add_node("n", "say \"hi\"");
  EXPECT_NE(g.str().find("\\\"hi\\\""), std::string::npos);
}

}  // namespace
