// Unit tests for vector clocks.
#include <gtest/gtest.h>

#include "trace/vclock.h"
#include "util/error.h"

namespace {

using acfc::trace::VClock;

TEST(VClock, StartsAtZero) {
  VClock v(3);
  EXPECT_EQ(v.size(), 3);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(v[i], 0u);
}

TEST(VClock, TickAdvancesOwnComponent) {
  VClock v(3);
  v.tick(1);
  v.tick(1);
  EXPECT_EQ(v[0], 0u);
  EXPECT_EQ(v[1], 2u);
}

TEST(VClock, MergeTakesComponentwiseMax) {
  VClock a(3), b(3);
  a.tick(0);
  a.tick(0);
  b.tick(1);
  a.merge(b);
  EXPECT_EQ(a[0], 2u);
  EXPECT_EQ(a[1], 1u);
  EXPECT_EQ(a[2], 0u);
}

TEST(VClock, HappenedBeforeIsStrict) {
  VClock a(2), b(2);
  a.tick(0);
  b.tick(0);
  b.tick(1);
  EXPECT_TRUE(a.happened_before(b));
  EXPECT_FALSE(b.happened_before(a));
  EXPECT_FALSE(a.happened_before(a));  // irreflexive
}

TEST(VClock, ConcurrentDetection) {
  VClock a(2), b(2);
  a.tick(0);
  b.tick(1);
  EXPECT_TRUE(a.concurrent_with(b));
  EXPECT_TRUE(b.concurrent_with(a));
  EXPECT_FALSE(a.happened_before(b));
}

TEST(VClock, EqualClocksAreNeitherOrderedNorConcurrent) {
  VClock a(2), b(2);
  a.tick(0);
  b.tick(0);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.happened_before(b));
  EXPECT_FALSE(a.concurrent_with(b));
}

TEST(VClock, MessageChainCreatesOrder) {
  // p sends after two local events; q receives and then acts.
  VClock p(2), q(2);
  p.tick(0);
  p.tick(0);
  const VClock send_vc = p;
  q.tick(1);
  q.merge(send_vc);
  q.tick(1);
  EXPECT_TRUE(send_vc.happened_before(q));
}

TEST(VClock, SizeMismatchThrows) {
  VClock a(2), b(3);
  EXPECT_THROW(a.merge(b), acfc::util::InternalError);
  EXPECT_THROW((void)a.happened_before(b), acfc::util::InternalError);
}

TEST(VClock, StrFormat) {
  VClock v(2);
  v.tick(0);
  EXPECT_EQ(v.str(), "[1 0]");
}

}  // namespace
