// Tests for the canonical workload library: every named workload builds,
// runs deadlock-free across world sizes, and behaves per its contract
// (aligned safe, misaligned unsafe-then-repairable, butterfly matching).
#include <gtest/gtest.h>

#include "match/match.h"
#include "mp/printer.h"
#include "workloads/workloads.h"
#include "place/place.h"
#include "sim/engine.h"
#include "trace/analysis.h"
#include "util/error.h"

namespace {

using namespace acfc;

class AllWorkloads : public ::testing::TestWithParam<std::string> {};

TEST_P(AllWorkloads, BuildsAndRunsAcrossWorldSizes) {
  mp::WorkloadParams params;
  params.iterations = 3;
  params.compute_cost = 1.0;
  const mp::Program p = mp::workload_by_name(GetParam(), params);
  EXPECT_GT(p.stmt_count(), 0);
  for (const int nprocs : {2, 3, 4, 7, 8}) {
    const auto r = sim::simulate(p, nprocs, 1);
    EXPECT_TRUE(r.trace.completed)
        << GetParam() << " deadlocked at n=" << nprocs;
  }
}

TEST_P(AllWorkloads, RepairableAndSafeAfterPipeline) {
  mp::WorkloadParams params;
  params.iterations = 3;
  params.compute_cost = 1.0;
  mp::Program p = mp::workload_by_name(GetParam(), params);
  const auto report = place::repair_placement(p);
  ASSERT_TRUE(report.success) << GetParam();
  for (const int nprocs : {2, 5, 8}) {
    const auto r = sim::simulate(p, nprocs, 2);
    ASSERT_TRUE(r.trace.completed) << GetParam();
    for (const auto& cut : trace::all_straight_cuts(r.trace))
      EXPECT_TRUE(trace::analyze_cut(r.trace, cut).consistent)
          << GetParam() << " n=" << nprocs << "\n" << mp::print(p);
  }
}

INSTANTIATE_TEST_SUITE_P(Names, AllWorkloads,
                         ::testing::ValuesIn(mp::workload_names()));

TEST(Workloads, AlignedJacobiSafeAsIs) {
  const mp::Program p = mp::jacobi_aligned();
  const auto check =
      place::check_condition1(match::build_extended_cfg(p));
  EXPECT_EQ(check.hard_count(), 0);
}

TEST(Workloads, MisalignedJacobiUnsafeAsIs) {
  const mp::Program p = mp::jacobi_misaligned();
  const auto check =
      place::check_condition1(match::build_extended_cfg(p));
  EXPECT_GE(check.hard_count(), 1);
  const auto r = sim::simulate(p, 4, 1);
  ASSERT_TRUE(r.trace.completed);
  int bad = 0;
  for (const auto& cut : trace::all_straight_cuts(r.trace))
    bad += trace::analyze_cut(r.trace, cut).consistent ? 0 : 1;
  EXPECT_GT(bad, 0);
}

TEST(Workloads, ButterflyMessageCountsMatchHypercube) {
  // For n a power of two, every round exchanges n messages (n/2 pairs,
  // both directions); log2(n) active rounds per iteration.
  mp::WorkloadParams params;
  params.iterations = 1;
  params.checkpoints = false;
  const mp::Program p = mp::butterfly(params);
  for (const int n : {2, 4, 8, 16}) {
    const auto r = sim::simulate(p, n, 1);
    ASSERT_TRUE(r.trace.completed);
    int rounds = 0;
    for (int x = n; x > 1; x /= 2) ++rounds;
    EXPECT_EQ(r.stats.app_messages, rounds * n) << "n=" << n;
  }
}

TEST(Workloads, ButterflyNonPowerOfTwoStillCompletes) {
  mp::WorkloadParams params;
  params.iterations = 2;
  const mp::Program p = mp::butterfly(params);
  for (const int n : {3, 5, 6, 7, 12}) {
    const auto r = sim::simulate(p, n, 1);
    EXPECT_TRUE(r.trace.completed) << "n=" << n;
  }
}

TEST(Workloads, ButterflyMatchingFindsPartnerEdges) {
  mp::WorkloadParams params;
  params.iterations = 1;
  params.checkpoints = false;
  const mp::Program p = mp::butterfly(params);
  // With the default bounded world sizes (max 16), only rounds whose
  // partners exist at n ≤ 16 are witnessed: 4 rounds × 2 directions.
  const match::ExtendedCfg ext_default = match::build_extended_cfg(p);
  EXPECT_EQ(ext_default.message_edges().size(), 8u);
  // Covering the deployment scale (n up to 64) witnesses all 6 rounds —
  // the documented contract: SatOptions::world_sizes must include the
  // sizes the program will actually run at.
  match::MatchOptions mopts;
  mopts.sat.world_sizes = {2, 3, 4, 5, 8, 16, 17, 33, 64};
  const match::ExtendedCfg ext = match::build_extended_cfg(p, mopts);
  EXPECT_EQ(ext.message_edges().size(), 12u);
  // And every simulated message is statically matched (Lemma 3.1).
  const auto r = sim::simulate(p, 8, 1);
  for (const auto& m : r.trace.app_messages()) {
    const auto send = ext.graph().node_for_stmt(m.send_stmt_uid);
    const auto recv = ext.graph().node_for_stmt(m.recv_stmt_uid);
    ASSERT_TRUE(send && recv);
    bool matched = false;
    for (const auto& e : ext.message_edges())
      matched |= e.send == *send && e.recv == *recv;
    EXPECT_TRUE(matched);
  }
}

TEST(Workloads, UnknownNameThrows) {
  EXPECT_THROW(mp::workload_by_name("quantum_teleport"),
               util::ProgramError);
}

TEST(Workloads, CheckpointKnobRemovesCheckpoints) {
  mp::WorkloadParams params;
  params.checkpoints = false;
  for (const auto& name : mp::workload_names())
    EXPECT_EQ(mp::checkpoint_count(mp::workload_by_name(name, params)), 0)
        << name;
}

TEST(Workloads, ParamsControlShape) {
  mp::WorkloadParams small, big;
  small.iterations = 2;
  big.iterations = 9;
  EXPECT_LT(mp::ring(small).stmt_count(), 20);
  const auto rs = sim::simulate(mp::ring(small), 3);
  const auto rb = sim::simulate(mp::ring(big), 3);
  EXPECT_LT(rs.stats.app_messages, rb.stats.app_messages);
}

}  // namespace
