// acfc — command-line driver for the application-driven coordination-free
// checkpointing toolchain. <prog> is a .mp file path or `-w <workload>`
// naming a canonical workload (see `acfc workloads`).
//
//   acfc analyze  <prog>                 run Phases II+III checks, report
//   acfc place    <prog> [-o out.mp]     repair placement (Algorithm 3.2)
//   acfc insert   <prog> [-T sec] [-o f] Phase-I checkpoint insertion
//   acfc run      <prog> [-n N] [--fail P@T ...] [--diagram]
//                        [--trace-out f.json]  chrome://tracing export
//   acfc dot      <prog> [-o out.dot]    extended CFG in Graphviz form
//   acfc faceoff  <prog> [-n N]          run all protocols, print table
//   acfc model    [-n N] [--wm s]        overhead-ratio model point
//   acfc explore  -w W [--driver D] ...  model-check the schedule space
//   acfc explore  --repro f.acfx         replay a counterexample artifact
//   acfc workloads                       list canonical workload names
//
// Exit code 0 on success; 1 on safety violations (analyze), failures, or
// explorer violations / repro mismatches; 2 on usage errors.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "acfc/acfc.h"

namespace {

using namespace acfc;

int usage() {
  std::cerr <<
      "usage:  (<prog> is a .mp file or -w <workload-name>)\n"
      "  acfc analyze  <prog>\n"
      "  acfc place    <prog> [-o out.mp] [--strict]\n"
      "  acfc insert   <prog> [-T seconds] [-o out.mp]\n"
      "  acfc run      <prog> [-n N] [--seed S] [--fail P@T]... "
      "[--diagram] [--trace-out f.json]\n"
      "  acfc dot      <prog> [-o out.dot]\n"
      "  acfc faceoff  <prog> [-n N] [--interval T]\n"
      "  acfc model    [-n N] [--wm seconds]\n"
      "  acfc explore  -w <workload> [--driver name] [-n N] [--seed S]\n"
      "                [--depth K] [--budget N] [--failure-points]\n"
      "                [--max-failures K] [--tie-cap K] [--delay-steps K]\n"
      "                [--delay-quantum s] [--iterations K] [--threads K]\n"
      "                [--walks N] [--cic-stagger F] [--check-cic-index]\n"
      "                [--partition-points] [--partition-window s]\n"
      "                [--stall-points] [--stall-window s]\n"
      "                [--max-partitions K] [--max-stalls K]\n"
      "                [--no-digest] [--no-memo] [--no-shrink] [-o f.acfx]\n"
      "  acfc explore  --repro f.acfx\n"
      "  acfc workloads\n";
  return 2;
}

struct Args {
  std::vector<std::string> positional;
  std::optional<std::string> output;
  std::optional<std::string> workload;
  std::optional<std::string> trace_out;
  int nprocs = 4;
  std::uint64_t seed = 1;
  double interval = 300.0;
  double wm = 2e-3;
  bool strict = false;
  bool diagram = false;
  std::vector<sim::FailureEvent> failures;
  // explore
  std::optional<std::string> repro;
  std::string driver = "app-driven";
  int depth = 10;
  long budget = 5000;
  int max_failures = 1;
  int tie_cap = 3;
  int delay_steps = 1;
  double delay_quantum = 0.0;
  int iterations = -1;
  int threads = 1;
  long walks = 0;
  double cic_stagger = 0.0;
  bool failure_points = false;
  bool partition_points = false;
  double partition_window = 0.5;
  bool stall_points = false;
  double stall_window = 0.5;
  int max_partitions = 1;
  int max_stalls = 1;
  bool check_cic_index = false;
  bool no_digest = false;
  bool no_memo = false;
  bool no_shrink = false;
};

std::optional<Args> parse_args(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "-o") {
      auto v = next();
      if (!v) return std::nullopt;
      args.output = *v;
    } else if (arg == "--trace-out") {
      auto v = next();
      if (!v) return std::nullopt;
      args.trace_out = *v;
    } else if (arg == "-w" || arg == "--workload") {
      auto v = next();
      if (!v) return std::nullopt;
      args.workload = *v;
    } else if (arg == "-n") {
      auto v = next();
      if (!v) return std::nullopt;
      args.nprocs = std::stoi(*v);
    } else if (arg == "--seed") {
      auto v = next();
      if (!v) return std::nullopt;
      args.seed = std::stoull(*v);
    } else if (arg == "-T" || arg == "--interval") {
      auto v = next();
      if (!v) return std::nullopt;
      args.interval = std::stod(*v);
    } else if (arg == "--wm") {
      auto v = next();
      if (!v) return std::nullopt;
      args.wm = std::stod(*v);
    } else if (arg == "--repro") {
      auto v = next();
      if (!v) return std::nullopt;
      args.repro = *v;
    } else if (arg == "--driver") {
      auto v = next();
      if (!v) return std::nullopt;
      args.driver = *v;
    } else if (arg == "--depth") {
      auto v = next();
      if (!v) return std::nullopt;
      args.depth = std::stoi(*v);
    } else if (arg == "--budget") {
      auto v = next();
      if (!v) return std::nullopt;
      args.budget = std::stol(*v);
    } else if (arg == "--max-failures") {
      auto v = next();
      if (!v) return std::nullopt;
      args.max_failures = std::stoi(*v);
    } else if (arg == "--tie-cap") {
      auto v = next();
      if (!v) return std::nullopt;
      args.tie_cap = std::stoi(*v);
    } else if (arg == "--delay-steps") {
      auto v = next();
      if (!v) return std::nullopt;
      args.delay_steps = std::stoi(*v);
    } else if (arg == "--delay-quantum") {
      auto v = next();
      if (!v) return std::nullopt;
      args.delay_quantum = std::stod(*v);
    } else if (arg == "--iterations") {
      auto v = next();
      if (!v) return std::nullopt;
      args.iterations = std::stoi(*v);
    } else if (arg == "--threads") {
      auto v = next();
      if (!v) return std::nullopt;
      args.threads = std::stoi(*v);
    } else if (arg == "--walks") {
      auto v = next();
      if (!v) return std::nullopt;
      args.walks = std::stol(*v);
    } else if (arg == "--cic-stagger") {
      auto v = next();
      if (!v) return std::nullopt;
      args.cic_stagger = std::stod(*v);
    } else if (arg == "--failure-points") {
      args.failure_points = true;
    } else if (arg == "--partition-points") {
      args.partition_points = true;
    } else if (arg == "--partition-window") {
      auto v = next();
      if (!v) return std::nullopt;
      args.partition_window = std::stod(*v);
    } else if (arg == "--stall-points") {
      args.stall_points = true;
    } else if (arg == "--stall-window") {
      auto v = next();
      if (!v) return std::nullopt;
      args.stall_window = std::stod(*v);
    } else if (arg == "--max-partitions") {
      auto v = next();
      if (!v) return std::nullopt;
      args.max_partitions = std::stoi(*v);
    } else if (arg == "--max-stalls") {
      auto v = next();
      if (!v) return std::nullopt;
      args.max_stalls = std::stoi(*v);
    } else if (arg == "--check-cic-index") {
      args.check_cic_index = true;
    } else if (arg == "--no-digest") {
      args.no_digest = true;
    } else if (arg == "--no-memo") {
      args.no_memo = true;
    } else if (arg == "--no-shrink") {
      args.no_shrink = true;
    } else if (arg == "--strict") {
      args.strict = true;
    } else if (arg == "--diagram") {
      args.diagram = true;
    } else if (arg == "--fail") {
      auto v = next();
      if (!v) return std::nullopt;
      const auto at = v->find('@');
      if (at == std::string::npos) return std::nullopt;
      args.failures.push_back(
          {std::stoi(v->substr(0, at)), std::stod(v->substr(at + 1))});
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << '\n';
      return std::nullopt;
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

/// A program comes from a positional .mp path or `-w <workload-name>`.
mp::Program load_program(const Args& args) {
  if (!args.positional.empty())
    return mp::parse_file(args.positional.at(0));
  if (args.workload) return mp::workload_by_name(*args.workload);
  throw util::ProgramError("no program given (file or -w workload)");
}

bool has_program(const Args& args) {
  return args.positional.size() == 1 ||
         (args.positional.empty() && args.workload.has_value());
}

void write_or_print(const std::optional<std::string>& path,
                    const std::string& text) {
  if (!path) {
    std::cout << text;
    return;
  }
  std::ofstream out(*path);
  out << text;
  std::cout << "wrote " << *path << '\n';
}

int cmd_analyze(const Args& args) {
  const mp::Program program = load_program(args);
  if (auto problem = cfg::build_cfg(program).check_balance()) {
    std::cout << "UNBALANCED: " << *problem << '\n';
    return 1;
  }
  const match::ExtendedCfg ext = match::build_extended_cfg(program);
  std::cout << "statements:      " << program.stmt_count() << '\n';
  std::cout << "checkpoints:     " << mp::checkpoint_count(program) << '\n';
  std::cout << "message edges:   " << ext.message_edges().size() << '\n';
  const auto check = place::check_condition1(ext);
  std::cout << "violations:      " << check.violations.size() << " ("
            << check.hard_count() << " hard)\n";
  for (const auto& v : check.violations) {
    std::cout << "  S_" << v.index << ": ckpt#" << v.from_ckpt_id << " ⇝ ckpt#"
              << v.to_ckpt_id << (v.hard ? "  [HARD]" : "  [loop-carried]")
              << '\n';
  }
  if (check.hard_count() > 0) {
    std::cout << "verdict: UNSAFE — straight cuts are not recovery lines; "
                 "run `acfc place`\n";
    return 1;
  }
  std::cout << "verdict: safe (straight cuts are recovery lines"
            << (check.violations.empty() ? "" : " for aligned instances")
            << ")\n";
  return 0;
}

int cmd_place(const Args& args) {
  mp::Program program = load_program(args);
  place::RepairOptions ropts;
  if (args.strict) ropts.policy = place::RepairPolicy::kStrict;
  const auto report = place::repair_placement(program, ropts);
  for (const auto& line : report.log) std::cout << "  " << line << '\n';
  std::cout << "moves=" << report.moves << " merges=" << report.merges
            << " hoists=" << report.hoists << '\n';
  if (!report.success) {
    std::cerr << "placement repair failed\n";
    return 1;
  }
  write_or_print(args.output, mp::print(program));
  return 0;
}

int cmd_insert(const Args& args) {
  mp::Program program = load_program(args);
  place::InsertOptions iopts;
  if (args.interval != 300.0) iopts.target_interval = args.interval;
  const int inserted = place::insert_checkpoints(program, iopts);
  place::equalize_checkpoints(program);
  std::cout << "inserted " << inserted << " checkpoints (interval "
            << place::optimal_interval(iopts) << " s)\n";
  write_or_print(args.output, mp::print(program));
  return 0;
}

int cmd_run(const Args& args) {
  const mp::Program program = load_program(args);
  sim::SimOptions opts;
  opts.nprocs = args.nprocs;
  opts.seed = args.seed;
  opts.failures = args.failures;
  obs::Registry registry;
  if (args.trace_out) opts.obs = &registry;
  sim::Engine engine(program, opts);
  const auto result = engine.run();
  if (args.trace_out) {
    obs::save_text(*args.trace_out,
                   obs::to_chrome_trace(registry.snapshot()));
    std::cout << "wrote " << *args.trace_out << '\n';
  }
  std::cout << result.trace.summary() << '\n';
  std::cout << "restarts: " << result.stats.restarts << '\n';
  int bad = 0, cuts = 0;
  for (const auto& cut : trace::all_straight_cuts(result.trace)) {
    ++cuts;
    bad += trace::analyze_cut(result.trace, cut).consistent ? 0 : 1;
  }
  std::cout << "straight cuts: " << cuts << " (" << bad
            << " inconsistent)\n";
  if (args.diagram)
    std::cout << trace::render_spacetime(result.trace);
  return result.trace.completed && bad == 0 ? 0 : 1;
}

int cmd_dot(const Args& args) {
  const mp::Program program = load_program(args);
  const match::ExtendedCfg ext = match::build_extended_cfg(program);
  write_or_print(args.output, ext.to_dot(program.name));
  return 0;
}

int cmd_faceoff(const Args& args) {
  const mp::Program plain = load_program(args);
  sim::SimOptions sopts;
  sopts.nprocs = args.nprocs;
  proto::ProtocolOptions popts;
  popts.interval = args.interval;
  util::Table table({"protocol", "ckpts", "forced", "ctl msgs",
                     "paused (s)", "makespan (s)"});
  for (const auto protocol :
       {proto::Protocol::kAppDriven, proto::Protocol::kSyncAndStop,
        proto::Protocol::kChandyLamport, proto::Protocol::kKooToueg,
        proto::Protocol::kCic,
        proto::Protocol::kUncoordinated}) {
    const auto run = proto::run_protocol(plain, protocol, sopts, popts);
    table.add_row({proto::protocol_name(protocol),
                   std::to_string(run.sim.stats.statement_checkpoints +
                                  run.sim.stats.forced_checkpoints),
                   std::to_string(run.sim.stats.forced_checkpoints),
                   std::to_string(run.sim.stats.control_messages),
                   util::format_double(run.sim.stats.paused_time, 4),
                   util::format_double(run.sim.trace.end_time, 5)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_model(const Args& args) {
  perf::NetworkParams net;
  net.w_m = args.wm;
  util::Table table({"protocol", "lambda(n)", "M (s)", "overhead ratio"});
  for (const auto protocol :
       {proto::Protocol::kAppDriven, proto::Protocol::kSyncAndStop,
        proto::Protocol::kChandyLamport}) {
    const auto params = perf::params_for(protocol, args.nprocs, net);
    table.add_row({proto::protocol_name(protocol),
                   util::format_double(params.lambda, 4),
                   util::format_double(params.M, 4),
                   util::format_double(perf::overhead_ratio(params), 6)});
  }
  std::cout << "n=" << args.nprocs << "  w_m=" << args.wm << "\n";
  table.print(std::cout);
  return 0;
}

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

int cmd_repro(const Args& args) {
  std::ifstream in(*args.repro);
  if (!in) {
    std::cerr << "cannot read " << *args.repro << '\n';
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const auto artifact = explore::parse_artifact(text.str());
  if (!artifact) {
    std::cerr << "malformed artifact: " << *args.repro << '\n';
    return 2;
  }
  const auto outcome = explore::replay_artifact(*artifact);
  std::cout << "scenario: " << artifact->scenario.workload << " / "
            << artifact->scenario.driver << "  n="
            << artifact->scenario.nprocs << '\n';
  std::cout << "plan:     " << artifact->plan.size() << " choices\n";
  std::cout << "digest:   " << hex64(outcome.replay.digest) << " (expected "
            << hex64(artifact->digest) << ") "
            << (outcome.digest_matched ? "MATCH" : "MISMATCH") << '\n';
  std::cout << "property: "
            << (outcome.replay.violation ? outcome.replay.violation->property
                                         : "none")
            << " (expected " << artifact->property << ") "
            << (outcome.property_matched ? "MATCH" : "MISMATCH") << '\n';
  if (outcome.replay.violation)
    std::cout << "detail:   " << outcome.replay.violation->detail << '\n';
  const bool ok = outcome.property_matched && outcome.digest_matched;
  std::cout << (ok ? "repro: reproduced" : "repro: NOT reproduced") << '\n';
  return ok ? 0 : 1;
}

int cmd_explore(const Args& args) {
  if (args.repro) return cmd_repro(args);
  if (!args.workload || !args.positional.empty()) return usage();

  explore::Scenario scenario;
  scenario.workload = *args.workload;
  scenario.driver = args.driver;
  scenario.nprocs = args.nprocs;
  scenario.seed = args.seed;
  scenario.proto.interval = args.interval;
  scenario.proto.cic_stagger = args.cic_stagger;
  if (args.iterations >= 0) scenario.params.iterations = args.iterations;

  explore::ExploreOptions opts;
  opts.max_choice_points = args.depth;
  opts.max_schedules = args.budget;
  opts.max_failures = args.max_failures;
  opts.max_partitions = args.max_partitions;
  opts.max_stalls = args.max_stalls;
  opts.memoize = !args.no_memo;
  opts.threads = args.threads;
  opts.random_walks = args.walks;
  opts.strategy_seed = args.seed;
  opts.check_digest = !args.no_digest;
  opts.check_cic_index = args.check_cic_index;
  opts.perturb.tie_cap = args.tie_cap;
  opts.perturb.delay_steps = args.delay_steps;
  opts.perturb.delay_quantum = args.delay_quantum;
  opts.perturb.failure_points = args.failure_points;
  opts.perturb.partition_points = args.partition_points;
  opts.perturb.partition_window = args.partition_window;
  opts.perturb.stall_points = args.stall_points;
  opts.perturb.stall_window = args.stall_window;

  const auto result = explore::explore(scenario, opts);
  std::cout << "schedules:  " << result.schedules_run
            << (result.complete ? "  (complete)" : "  (budget hit)") << '\n';
  std::cout << "choices:    " << result.choice_points << '\n';
  std::cout << "states:     " << result.states_recorded << " recorded, "
            << result.states_pruned << " pruned\n";
  std::cout << "violations: " << result.violations_found << '\n';
  if (result.violations.empty()) return 0;

  explore::Violation minimal = result.violations.front();
  if (!args.no_shrink) {
    const auto shrunk = explore::shrink(scenario, opts, minimal);
    std::cout << "shrink:     " << shrunk.initial_choices << " -> "
              << shrunk.final_choices << " non-default choices ("
              << shrunk.runs << " replays)\n";
    minimal = shrunk.minimal;
  }
  std::cout << "property:   " << minimal.property << '\n';
  std::cout << "detail:     " << minimal.detail << '\n';
  std::cout << "plan:       ";
  for (std::size_t i = 0; i < minimal.plan.size(); ++i)
    std::cout << (i ? "," : "") << minimal.plan[i];
  std::cout << '\n';
  if (args.output) {
    const auto artifact = explore::make_artifact(scenario, opts, minimal);
    std::ofstream out(*args.output);
    out << explore::to_text(artifact);
    std::cout << "wrote " << *args.output << '\n';
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::optional<Args> args;
  try {
    args = parse_args(argc, argv);
  } catch (const std::exception&) {  // stoi/stod on malformed numbers
    return usage();
  }
  if (!args) return usage();

  try {
    if (command == "analyze" && has_program(*args))
      return cmd_analyze(*args);
    if (command == "place" && has_program(*args))
      return cmd_place(*args);
    if (command == "insert" && has_program(*args))
      return cmd_insert(*args);
    if (command == "run" && has_program(*args))
      return cmd_run(*args);
    if (command == "dot" && has_program(*args))
      return cmd_dot(*args);
    if (command == "faceoff" && has_program(*args))
      return cmd_faceoff(*args);
    if (command == "model" && args->positional.empty())
      return cmd_model(*args);
    if (command == "explore")
      return cmd_explore(*args);
    if (command == "workloads") {
      for (const auto& name : mp::workload_names())
        std::cout << name << '\n';
      return 0;
    }
  } catch (const util::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return usage();
}
