#!/usr/bin/env python3
"""Compare two BENCH_*.json files and fail on throughput regressions.

Usage:
    tools/bench_diff.py BASELINE.json CANDIDATE.json [--threshold 0.10]

Reads the `events_per_s` (and, when present, `ckpts_per_s`) maps emitted
by tools/bench_to_json.py, prints a per-benchmark table of
candidate/baseline ratios, and exits nonzero if any benchmark present in
BOTH files regressed by more than the threshold (default 10%).
Benchmarks present in only one file never fail the check — renames and
new arms should not break CI — but a baseline benchmark MISSING from the
candidate is loudly warned about on stderr (a silently vanished
measurement looks exactly like a passing one otherwise), while a
candidate-only benchmark is just listed as new.

The comparison core (`compare` / `print_table`) is importable;
tools/bench_smoke_diff.py reuses it to gate a freshly-measured candidate
against the committed baseline in ctest (`ctest -L BenchDiff`).
"""

import argparse
import json
import sys


METRICS = ("events_per_s", "ckpts_per_s")


def load(path):
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_diff: cannot read {path}: {err}")


def compare(base, cand, threshold):
    """Pairs the METRICS maps of two condensed bench docs.

    Returns (rows, regressions): rows are
    (metric, name, baseline, candidate, ratio, status) tuples covering the
    union of both docs; regressions the (metric, name, ratio) subset whose
    candidate/baseline ratio fell below 1 - threshold.
    """
    regressions = []
    rows = []
    for metric in METRICS:
        base_map = base.get(metric, {})
        cand_map = cand.get(metric, {})
        for name in sorted(set(base_map) | set(cand_map)):
            b = base_map.get(name)
            c = cand_map.get(name)
            if c is None:
                rows.append(
                    (metric, name, b, c, None, "MISSING-FROM-CANDIDATE"))
                continue
            if b is None:
                rows.append((metric, name, b, c, None, "new-in-candidate"))
                continue
            ratio = c / b if b else float("inf")
            status = "ok"
            if ratio < 1.0 - threshold:
                status = "REGRESSION"
                regressions.append((metric, name, ratio))
            rows.append((metric, name, b, c, ratio, status))
    return rows, regressions


def print_table(rows):
    name_w = max(len(f"{m}:{n}") for m, n, *_ in rows)
    print(f"{'benchmark':<{name_w}}  {'baseline':>14}  {'candidate':>14}  "
          f"{'ratio':>7}  status")
    for metric, name, b, c, ratio, status in rows:
        label = f"{metric}:{name}"
        b_s = f"{b:14.0f}" if b is not None else f"{'-':>14}"
        c_s = f"{c:14.0f}" if c is not None else f"{'-':>14}"
        r_s = f"{ratio:7.3f}" if ratio is not None else f"{'-':>7}"
        print(f"{label:<{name_w}}  {b_s}  {c_s}  {r_s}  {status}")


def report(rows, regressions, threshold):
    """Prints the table + verdict; returns the process exit code."""
    if not rows:
        sys.exit("bench_diff: no comparable metrics found in either file")
    print_table(rows)
    missing = [(m, n) for m, n, _b, _c, _r, status in rows
               if status == "MISSING-FROM-CANDIDATE"]
    if missing:
        print(
            f"\nbench_diff: WARNING: {len(missing)} baseline benchmark(s) "
            "missing from the candidate (not failing, but a vanished "
            "measurement deserves a look):",
            file=sys.stderr,
        )
        for metric, name in missing:
            print(f"  {metric}:{name}", file=sys.stderr)
    if regressions:
        print(
            f"\nbench_diff: {len(regressions)} benchmark(s) regressed more "
            f"than {threshold:.0%}:",
            file=sys.stderr,
        )
        for metric, name, ratio in regressions:
            print(f"  {metric}:{name}  {ratio:.3f}x", file=sys.stderr)
        return 1
    print(f"\nbench_diff: no regression beyond {threshold:.0%}")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("candidate", help="candidate BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="max tolerated fractional regression (default 0.10 = 10%%)",
    )
    args = parser.parse_args()

    rows, regressions = compare(
        load(args.baseline), load(args.candidate), args.threshold)
    return report(rows, regressions, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
