#!/usr/bin/env python3
"""Compare two BENCH_*.json files and fail on throughput regressions.

Usage:
    tools/bench_diff.py BASELINE.json CANDIDATE.json [--threshold 0.10]

Reads the `events_per_s` (and, when present, `ckpts_per_s`) maps emitted
by tools/bench_to_json.py, prints a per-benchmark table of
candidate/baseline ratios, and exits nonzero if any benchmark present in
BOTH files regressed by more than the threshold (default 10%).
Benchmarks present in only one file are reported but never fail the
check — renames and new arms should not break CI.
"""

import argparse
import json
import sys


METRICS = ("events_per_s", "ckpts_per_s")


def load(path):
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_diff: cannot read {path}: {err}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("candidate", help="candidate BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="max tolerated fractional regression (default 0.10 = 10%%)",
    )
    args = parser.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)

    regressions = []
    rows = []
    for metric in METRICS:
        base_map = base.get(metric, {})
        cand_map = cand.get(metric, {})
        for name in sorted(set(base_map) | set(cand_map)):
            b = base_map.get(name)
            c = cand_map.get(name)
            if b is None or c is None:
                rows.append((metric, name, b, c, None, "only-one-side"))
                continue
            ratio = c / b if b else float("inf")
            status = "ok"
            if ratio < 1.0 - args.threshold:
                status = "REGRESSION"
                regressions.append((metric, name, ratio))
            rows.append((metric, name, b, c, ratio, status))

    if not rows:
        sys.exit("bench_diff: no comparable metrics found in either file")

    name_w = max(len(f"{m}:{n}") for m, n, *_ in rows)
    print(f"{'benchmark':<{name_w}}  {'baseline':>14}  {'candidate':>14}  "
          f"{'ratio':>7}  status")
    for metric, name, b, c, ratio, status in rows:
        label = f"{metric}:{name}"
        b_s = f"{b:14.0f}" if b is not None else f"{'-':>14}"
        c_s = f"{c:14.0f}" if c is not None else f"{'-':>14}"
        r_s = f"{ratio:7.3f}" if ratio is not None else f"{'-':>7}"
        print(f"{label:<{name_w}}  {b_s}  {c_s}  {r_s}  {status}")

    if regressions:
        print(
            f"\nbench_diff: {len(regressions)} benchmark(s) regressed more "
            f"than {args.threshold:.0%}:",
            file=sys.stderr,
        )
        for metric, name, ratio in regressions:
            print(f"  {metric}:{name}  {ratio:.3f}x", file=sys.stderr)
        return 1
    print(f"\nbench_diff: no regression beyond {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
