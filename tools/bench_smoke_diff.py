#!/usr/bin/env python3
"""Measure the sim throughput bench and diff it against a committed baseline.

Usage:
    tools/bench_smoke_diff.py --baseline BENCH_sim.json \
        [--bench build/bench/ablate_sim_throughput] \
        [--min-time 0.02] [--threshold 0.5]

The CI-facing half of the bench tooling (`ctest -L BenchDiff` runs this):
it drives the ablate_sim_throughput binary once at a short min-time,
condenses the output with tools/bench_to_json.py's extractor (nothing is
written to disk), and compares the fresh events/s + ckpts/s maps against
the committed BENCH_sim.json via tools/bench_diff.py's compare().

Short measurements on a loaded CI core are noisy, so the default
threshold is deliberately loose (50%): the test catches "the async
pipeline lost its speedup" or "a refactor halved engine throughput", not
single-digit drift. Wall-clock benchmarks (UseRealTime — the parallel
Fig8 sweeps) are excluded entirely: their smoke-grade numbers measure
scheduler contention on the CI core, not the code. Benchmarks present on
only one side never fail the check. Standard library only.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_diff  # noqa: E402
import bench_to_json  # noqa: E402


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="BENCH_sim.json",
                        help="committed BENCH_sim.json to diff against")
    parser.add_argument("--bench",
                        default=os.path.join("build", "bench",
                                             "ablate_sim_throughput"),
                        help="sim throughput benchmark binary")
    parser.add_argument("--min-time", type=float, default=0.02,
                        help="per-benchmark min time in seconds "
                             "(default %(default)s: smoke-grade)")
    parser.add_argument("--threshold", type=float, default=0.5,
                        help="max tolerated fractional regression "
                             "(default 0.5: catches collapses, not noise)")
    args = parser.parse_args()

    if not os.path.exists(args.bench):
        sys.exit(f"bench_smoke_diff: binary not found: {args.bench} "
                 "(build it first)")
    baseline = bench_diff.load(args.baseline)

    raw = bench_to_json.run_benchmark(args.bench, args.min_time)
    candidate = bench_to_json.condense_sim(raw, None, None, None, None)

    # Drop wall-clock phases (their condensed names lose the /real_time
    # suffix, so recover them from the raw run) from both sides.
    real_time = {
        bench_to_json.strip_real_time(b["name"])
        for b in raw.get("benchmarks", [])
        if b["name"].endswith("/real_time")
    }
    for doc in (baseline, candidate):
        for metric in bench_diff.METRICS:
            for name in real_time:
                doc.get(metric, {}).pop(name, None)

    rows, regressions = bench_diff.compare(baseline, candidate,
                                           args.threshold)
    return bench_diff.report(rows, regressions, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
