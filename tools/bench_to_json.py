#!/usr/bin/env python3
"""Run the A3 analysis-scaling benchmark and emit BENCH_analysis.json.

Drives bench/ablate_analysis_scaling through google-benchmark's JSON
reporter and condenses the output into one flat document:

    {
      "benchmark": "ablate_analysis_scaling",
      "context": {...},                       # host info from the harness
      "phases": {
        "BM_CheckCondition1/32": {"ns_per_op": ..., "iterations": ...,
                                   "counters": {"msg_edges": ...}},
        ...
      },
      "speedups": {"CheckCondition1/32": 6.8, "RepairPlacement/32": 7.3}
    }

"speedups" pairs every fast-path phase with its *Legacy twin at the same
argument (legacy ns-per-op / fast ns-per-op). Standard library only.

Usage:
    tools/bench_to_json.py [--bench PATH] [--out PATH] [--min-time SECS]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

DEFAULT_BENCH = os.path.join("build", "bench", "ablate_analysis_scaling")
DEFAULT_OUT = "BENCH_analysis.json"


def run_benchmark(bench, min_time):
    """Runs the benchmark binary, returns the parsed google-benchmark JSON."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        tmp_path = tmp.name
    try:
        cmd = [
            bench,
            "--benchmark_format=console",
            "--benchmark_out_format=json",
            "--benchmark_out=%s" % tmp_path,
        ]
        if min_time is not None:
            cmd.append("--benchmark_min_time=%g" % min_time)
        subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
        with open(tmp_path) as f:
            return json.load(f)
    finally:
        os.unlink(tmp_path)


NON_COUNTER_KEYS = {
    "name", "run_name", "run_type", "repetitions", "repetition_index",
    "threads", "iterations", "real_time", "cpu_time", "time_unit",
    "family_index", "per_family_instance_index", "aggregate_name",
    "aggregate_unit", "label", "error_occurred", "error_message",
}


def to_ns(value, unit):
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    return value * scale[unit]


def condense(raw):
    phases = {}
    for bench in raw.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        counters = {
            k: v for k, v in bench.items()
            if k not in NON_COUNTER_KEYS and isinstance(v, (int, float))
        }
        phases[bench["name"]] = {
            "ns_per_op": to_ns(bench["real_time"], bench["time_unit"]),
            "cpu_ns_per_op": to_ns(bench["cpu_time"], bench["time_unit"]),
            "iterations": bench["iterations"],
            "counters": counters,
        }

    # Fast path vs its Legacy twin: BM_Foo/N vs BM_FooLegacy/N.
    speedups = {}
    for name, stats in phases.items():
        base, slash, arg = name.partition("/")
        legacy = phases.get(base + "Legacy" + slash + arg)
        if legacy is None or stats["ns_per_op"] == 0:
            continue
        label = name[3:] if name.startswith("BM_") else name
        speedups[label] = round(legacy["ns_per_op"] / stats["ns_per_op"], 2)

    return {
        "benchmark": "ablate_analysis_scaling",
        "context": raw.get("context", {}),
        "phases": phases,
        "speedups": speedups,
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", default=DEFAULT_BENCH,
                        help="benchmark binary (default: %(default)s)")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="output JSON path (default: %(default)s)")
    parser.add_argument("--min-time", type=float, default=None,
                        help="per-benchmark min time in seconds")
    args = parser.parse_args()

    if not os.path.exists(args.bench):
        sys.exit("benchmark binary not found: %s (build it first)" %
                 args.bench)
    doc = condense(run_benchmark(args.bench, args.min_time))
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    for label, speedup in sorted(doc["speedups"].items()):
        print("%-28s %5.2fx" % (label, speedup))
    print("wrote %s (%d phases)" % (args.out, len(doc["phases"])))


if __name__ == "__main__":
    main()
