#!/usr/bin/env python3
"""Run a google-benchmark suite and emit a condensed BENCH_*.json.

Two suites:

  --suite analysis (default) drives bench/ablate_analysis_scaling and
  writes BENCH_analysis.json:

    {
      "benchmark": "ablate_analysis_scaling",
      "context": {...},                       # host info from the harness
      "phases": {
        "BM_CheckCondition1/32": {"ns_per_op": ..., "iterations": ...,
                                   "counters": {"msg_edges": ...}},
        ...
      },
      "speedups": {"CheckCondition1/32": 6.8, "RepairPlacement/32": 7.3}
    }

  "speedups" pairs every fast-path phase with its *Legacy twin at the same
  argument (legacy ns-per-op / fast ns-per-op).

  --suite sim drives bench/ablate_sim_throughput plus bench/ablate_recovery,
  bench/ablate_degraded_recovery, and bench/ablate_partition, and writes
  BENCH_sim.json:

    {
      "benchmark": "ablate_sim_throughput",
      "context": {...},
      "phases": {...},                        # same shape as above
      "events_per_s": {"BM_SimulateRing/8": 5.1e6, ...},
      "ckpts_per_s": {"BM_CheckpointCapture/1": ..., ...},
      "parallel_speedup": {"Fig8Sweep/4": 1.9, ...},   # vs Fig8SweepSerial
      "async_capture_speedup": {"AsyncCapture/32": 1.6, ...},  # arm2/arm1
      "recovery": {                           # fault-injected sweeps, per
        "appl-driven": {"recovery_latency_s": ...,     # protocol baseline
                         "lost_work_s": ..., "rollback_distance": ...,
                         "replayed_msgs": ..., "rollbacks": ..., ...},
        ...
      },
      "degraded": {                           # same crashes + rotten
        "appl-driven": {"fallback_depth": ...,         # storage + lossy wire
                         "extra_lost_work_s": ...,
                         "retransmit_overhead": ...,
                         "corrupt_skipped": ..., ...},
        ...
      },
      "partition": {                          # supervised runtime under
        "crash-only": {"detection_latency_s": ...,     # crashes, partitions,
                        "downtime_s": ...,             # and stalls
                        "false_suspicions": ...,
                        "quarantines": ..., ...},
        ...
      },
      "events_per_s_before": {...},           # only with --baseline
      "events_per_s_speedup": {...}           # after / before, per phase
    }

  "parallel_speedup" divides BM_Fig8SweepSerial's wall time by each
  BM_Fig8Sweep/T's (both run UseRealTime, so names carry a /real_time
  suffix which is ignored for pairing). --baseline points at a JSON file
  holding an "events_per_s" map from an earlier build (either a previous
  BENCH_sim.json or a hand-recorded {"events_per_s": {...}}); matching
  phases gain before/after counters. Standard library only.

Usage:
    tools/bench_to_json.py [--suite {analysis,sim}] [--bench PATH]
                           [--out PATH] [--min-time SECS] [--baseline PATH]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

SUITES = {
    "analysis": {
        "bench": os.path.join("build", "bench", "ablate_analysis_scaling"),
        "out": "BENCH_analysis.json",
    },
    "sim": {
        "bench": os.path.join("build", "bench", "ablate_sim_throughput"),
        "recovery_bench": os.path.join("build", "bench", "ablate_recovery"),
        "degraded_bench": os.path.join(
            "build", "bench", "ablate_degraded_recovery"),
        "partition_bench": os.path.join(
            "build", "bench", "ablate_partition"),
        "out": "BENCH_sim.json",
    },
}


def run_benchmark(bench, min_time):
    """Runs the benchmark binary, returns the parsed google-benchmark JSON."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        tmp_path = tmp.name
    try:
        cmd = [
            bench,
            "--benchmark_format=console",
            "--benchmark_out_format=json",
            "--benchmark_out=%s" % tmp_path,
        ]
        if min_time is not None:
            cmd.append("--benchmark_min_time=%g" % min_time)
        subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
        with open(tmp_path) as f:
            return json.load(f)
    finally:
        os.unlink(tmp_path)


NON_COUNTER_KEYS = {
    "name", "run_name", "run_type", "repetitions", "repetition_index",
    "threads", "iterations", "real_time", "cpu_time", "time_unit",
    "family_index", "per_family_instance_index", "aggregate_name",
    "aggregate_unit", "label", "error_occurred", "error_message",
}


def to_ns(value, unit):
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    return value * scale[unit]


def extract_phases(raw):
    phases = {}
    for bench in raw.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        counters = {
            k: v for k, v in bench.items()
            if k not in NON_COUNTER_KEYS and isinstance(v, (int, float))
        }
        phases[bench["name"]] = {
            "ns_per_op": to_ns(bench["real_time"], bench["time_unit"]),
            "cpu_ns_per_op": to_ns(bench["cpu_time"], bench["time_unit"]),
            "iterations": bench["iterations"],
            "counters": counters,
        }
    return phases


def strip_real_time(name):
    """UseRealTime appends /real_time to the benchmark name."""
    return name[:-len("/real_time")] if name.endswith("/real_time") else name


def condense_analysis(raw):
    phases = extract_phases(raw)

    # Fast path vs its Legacy twin: BM_Foo/N vs BM_FooLegacy/N.
    speedups = {}
    for name, stats in phases.items():
        base, slash, arg = name.partition("/")
        legacy = phases.get(base + "Legacy" + slash + arg)
        if legacy is None or stats["ns_per_op"] == 0:
            continue
        label = name[3:] if name.startswith("BM_") else name
        speedups[label] = round(legacy["ns_per_op"] / stats["ns_per_op"], 2)

    return {
        "benchmark": "ablate_analysis_scaling",
        "context": raw.get("context", {}),
        "phases": phases,
        "speedups": speedups,
    }


RECOVERY_COUNTERS = (
    "runs", "completed", "rollbacks", "recovery_latency_s", "lost_work_s",
    "rollback_distance", "replayed_msgs",
)

DEGRADED_COUNTERS = (
    "runs", "completed", "rollbacks", "degraded_rollbacks",
    "corrupt_skipped", "fallback_depth", "lost_work_s", "extra_lost_work_s",
    "retransmit_overhead", "transport_give_ups",
)

PARTITION_COUNTERS = (
    "runs", "completed", "rollbacks", "suspicions", "false_suspicions",
    "supervised_restarts", "quarantines", "detection_latency_s",
    "downtime_s",
)


def extract_per_protocol(raw, counters):
    """Per-protocol sweep counters keyed by the benchmark's label."""
    table = {}
    for bench in raw.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        key = bench.get("label") or strip_real_time(bench["name"])
        table[key] = {c: bench[c] for c in counters if c in bench}
    return table


def condense_sim(raw, recovery_raw, degraded_raw, partition_raw, baseline):
    phases = extract_phases(raw)
    if recovery_raw:
        phases.update(extract_phases(recovery_raw))
    if degraded_raw:
        phases.update(extract_phases(degraded_raw))
    if partition_raw:
        phases.update(extract_phases(partition_raw))

    events = {}
    ckpts = {}
    serial_ns = None
    parallel_ns = {}  # threads arg (str) -> ns_per_op
    for name, stats in phases.items():
        plain = strip_real_time(name)
        if "events/s" in stats["counters"]:
            events[plain] = stats["counters"]["events/s"]
        if "ckpts/s" in stats["counters"]:
            ckpts[plain] = stats["counters"]["ckpts/s"]
        base, _, arg = plain.partition("/")
        if base == "BM_Fig8SweepSerial":
            serial_ns = stats["ns_per_op"]
        elif base == "BM_Fig8Sweep" and arg:
            parallel_ns[arg] = stats["ns_per_op"]

    parallel_speedup = {}
    if serial_ns:
        for threads, ns in sorted(parallel_ns.items(), key=lambda kv: kv[0]):
            if ns > 0:
                parallel_speedup["Fig8Sweep/%s" % threads] = round(
                    serial_ns / ns, 2)

    # Async persistence pipeline: critical-path events/s of asynchronous
    # capture (arm 2) over synchronous capture (arm 1) at each world size.
    async_capture_speedup = {}
    for name, rate in events.items():
        base, _, arg = name.partition("/")
        if base != "BM_AsyncCapture" or not arg.startswith("2/"):
            continue
        nprocs = arg[len("2/"):]
        sync = events.get("BM_AsyncCapture/1/%s" % nprocs)
        if sync:
            async_capture_speedup["AsyncCapture/%s" % nprocs] = round(
                rate / sync, 2)

    doc = {
        "benchmark": "ablate_sim_throughput",
        "context": raw.get("context", {}),
        "phases": phases,
        "events_per_s": events,
        "ckpts_per_s": ckpts,
        "parallel_speedup": parallel_speedup,
        "async_capture_speedup": async_capture_speedup,
    }
    if recovery_raw:
        doc["recovery"] = extract_per_protocol(recovery_raw,
                                               RECOVERY_COUNTERS)
    if degraded_raw:
        doc["degraded"] = extract_per_protocol(degraded_raw,
                                               DEGRADED_COUNTERS)
    if partition_raw:
        doc["partition"] = extract_per_protocol(partition_raw,
                                                PARTITION_COUNTERS)

    if baseline:
        before = baseline.get("events_per_s", {})
        doc["events_per_s_before"] = before
        doc["baseline_note"] = baseline.get(
            "baseline_note", baseline.get("note", ""))
        speedup = {}
        for name, after in events.items():
            prior = before.get(name)
            if prior:
                speedup[name] = round(after / prior, 2)
        doc["events_per_s_speedup"] = speedup
    return doc


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", choices=sorted(SUITES), default="analysis",
                        help="benchmark suite to run (default: %(default)s)")
    parser.add_argument("--bench", default=None,
                        help="benchmark binary (default: per suite)")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: per suite)")
    parser.add_argument("--min-time", type=float, default=None,
                        help="per-benchmark min time in seconds")
    parser.add_argument("--baseline", default=None,
                        help="sim suite: JSON with an events_per_s map from "
                             "an earlier build; adds before/after counters")
    args = parser.parse_args()

    suite = SUITES[args.suite]
    bench = args.bench or suite["bench"]
    out = args.out or suite["out"]
    if not os.path.exists(bench):
        sys.exit("benchmark binary not found: %s (build it first)" % bench)

    raw = run_benchmark(bench, args.min_time)
    if args.suite == "analysis":
        doc = condense_analysis(raw)
        ratios = doc["speedups"]
    else:
        extra_raw = {"recovery": None, "degraded": None, "partition": None}
        for key, slot in (("recovery_bench", "recovery"),
                          ("degraded_bench", "degraded"),
                          ("partition_bench", "partition")):
            path = suite.get(key)
            if not path:
                continue
            if not os.path.exists(path):
                sys.exit("benchmark binary not found: %s (build it first)"
                         % path)
            extra_raw[slot] = run_benchmark(path, args.min_time)
        baseline = None
        if args.baseline:
            with open(args.baseline) as f:
                baseline = json.load(f)
        doc = condense_sim(raw, extra_raw["recovery"], extra_raw["degraded"],
                           extra_raw["partition"], baseline)
        ratios = dict(doc["parallel_speedup"])
        ratios.update(doc.get("async_capture_speedup", {}))
        ratios.update(doc.get("events_per_s_speedup", {}))

    with open(out, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    for label, speedup in sorted(ratios.items()):
        print("%-36s %5.2fx" % (label, speedup))
    print("wrote %s (%d phases)" % (out, len(doc["phases"])))


if __name__ == "__main__":
    main()
