#!/usr/bin/env python3
"""ObsSmoke checker: run one instrumented fig8 iteration and validate
its observability exports.

Usage:
    tools/check_obs_export.py --fig8 build/bench/fig8_overhead_vs_n \\
                              --out-dir build/bench

Invokes `fig8_overhead_vs_n --obs-export <out-dir>/obs_smoke`, then
checks, with only the stdlib json module as the oracle:

  * <prefix>.metrics.jsonl — every line parses as a JSON object shaped
    like a metric ({"metric", "kind", "layer", "unit", ...}) or a span
    ({"span", "track", "ts_us", "dur_us", "depth"});
  * every instrumented layer actually emitted (engine, transport,
    calqueue, store, persist) and the marquee metric of each is present;
  * <prefix>.trace.json — loads as one JSON document with a traceEvents
    array of chrome://tracing events carrying both complete spans ("X")
    and counter samples ("C"), each with the fields about:tracing needs.

Exit 0 when everything holds; 1 with a diagnostic otherwise.
"""

import argparse
import json
import os
import subprocess
import sys

REQUIRED_METRICS = (
    "engine.events_processed",
    "engine.checkpoints_statement",
    "transport.sends",
    "transport.retransmits",
    "calqueue.size_high_water",
    "store.bytes_written",
    "persist.submitted",
)
REQUIRED_LAYERS = {"engine", "transport", "calqueue", "store", "persist"}
METRIC_KINDS = {"counter", "gauge", "histogram"}


def fail(msg):
    sys.exit(f"check_obs_export: FAIL: {msg}")


def check_metric_line(lineno, obj):
    kind = obj.get("kind")
    if kind not in METRIC_KINDS:
        fail(f"metrics.jsonl:{lineno}: unknown kind {kind!r}")
    for key in ("layer", "unit"):
        if not isinstance(obj.get(key), str):
            fail(f"metrics.jsonl:{lineno}: missing string {key!r}")
    by_kind = {
        "counter": ("count",),
        "gauge": ("value", "high_water"),
        "histogram": ("count", "sum", "buckets"),
    }
    for key in by_kind[kind]:
        if key not in obj:
            fail(f"metrics.jsonl:{lineno}: {kind} lacks {key!r}")
    if kind == "histogram" and not isinstance(obj["buckets"], list):
        fail(f"metrics.jsonl:{lineno}: histogram buckets not a list")


def check_span_line(lineno, obj):
    for key in ("track", "ts_us", "dur_us", "depth"):
        if not isinstance(obj.get(key), int):
            fail(f"metrics.jsonl:{lineno}: span lacks integer {key!r}")
    if obj["dur_us"] < 0:
        fail(f"metrics.jsonl:{lineno}: negative span duration")


def check_jsonl(path):
    names, layers, spans = set(), set(), 0
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                fail(f"metrics.jsonl:{lineno}: blank line")
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as err:
                fail(f"metrics.jsonl:{lineno}: not JSON: {err}")
            if not isinstance(obj, dict):
                fail(f"metrics.jsonl:{lineno}: line is not an object")
            if "metric" in obj:
                check_metric_line(lineno, obj)
                names.add(obj["metric"])
                layers.add(obj["layer"])
            elif "span" in obj:
                check_span_line(lineno, obj)
                spans += 1
            else:
                fail(f"metrics.jsonl:{lineno}: neither metric nor span")
    for name in REQUIRED_METRICS:
        if name not in names:
            fail(f"metrics.jsonl: required metric {name!r} absent")
    missing_layers = REQUIRED_LAYERS - layers
    if missing_layers:
        fail(f"metrics.jsonl: layers never emitted: {sorted(missing_layers)}")
    if spans == 0:
        fail("metrics.jsonl: no span lines (expected checkpoint/rollback)")
    return len(names), spans


def check_chrome_trace(path):
    with open(path, encoding="utf-8") as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as err:
            fail(f"trace.json: not JSON: {err}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("trace.json: traceEvents missing or empty")
    phases = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"trace.json: traceEvents[{i}] is not an object")
        ph = ev.get("ph")
        phases.add(ph)
        for key in ("name", "ph", "ts", "pid"):
            if key not in ev:
                fail(f"trace.json: traceEvents[{i}] lacks {key!r}")
        if ph == "X" and "dur" not in ev:
            fail(f"trace.json: complete event [{i}] lacks 'dur'")
        if ph == "C" and "args" not in ev:
            fail(f"trace.json: counter event [{i}] lacks 'args'")
    for needed in ("X", "C"):
        if needed not in phases:
            fail(f"trace.json: no {needed!r} events (got {sorted(phases)})")
    return len(events)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fig8", required=True,
                        help="path to the fig8_overhead_vs_n binary")
    parser.add_argument("--out-dir", required=True,
                        help="directory the export files are written into")
    args = parser.parse_args()

    os.makedirs(args.out_dir, exist_ok=True)
    prefix = os.path.join(args.out_dir, "obs_smoke")
    proc = subprocess.run([args.fig8, "--obs-export", prefix])
    if proc.returncode != 0:
        fail(f"--obs-export run exited {proc.returncode}")

    metrics, spans = check_jsonl(prefix + ".metrics.jsonl")
    events = check_chrome_trace(prefix + ".trace.json")
    print(f"check_obs_export: OK — {metrics} metrics, {spans} spans, "
          f"{events} trace events")
    return 0


if __name__ == "__main__":
    sys.exit(main())
