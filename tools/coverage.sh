#!/usr/bin/env bash
# Line-coverage report for the acfc library (docs/testing.md, "Coverage").
#
# Configures an ACFC_COVERAGE=ON build, runs the tier-1 suite, then
# aggregates plain `gcov` output (no gcovr/lcov dependency) into a
# per-module and total line-coverage table over src/. Header lines that
# are compiled into several translation units are merged: a line counts
# as covered if ANY object executed it.
#
#   tools/coverage.sh            # tier-1 suite (the CI gate)
#   tools/coverage.sh --min 70   # additionally FAIL if TOTAL < 70%
#   COVERAGE_LABELS="" tools/coverage.sh   # full suite incl. slow tier
#   BUILD_DIR=/tmp/cov tools/coverage.sh   # custom build directory
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build-coverage}"
LABELS="${COVERAGE_LABELS-tier1}"
JOBS="$(nproc 2>/dev/null || echo 2)"

MIN_PCT=""
while [ $# -gt 0 ]; do
  case "$1" in
    --min)
      [ $# -ge 2 ] || { echo "--min needs a percentage" >&2; exit 2; }
      MIN_PCT="$2"
      shift 2
      ;;
    *)
      echo "unknown argument: $1 (usage: tools/coverage.sh [--min PCT])" >&2
      exit 2
      ;;
  esac
done

echo "== configure ($BUILD)"
cmake -B "$BUILD" -S "$ROOT" -DACFC_COVERAGE=ON \
      -DCMAKE_BUILD_TYPE=Debug >/dev/null
echo "== build"
cmake --build "$BUILD" -j"$JOBS" >/dev/null
echo "== test (${LABELS:-all labels})"
(cd "$BUILD" && rm -f $(find . -name '*.gcda') 2>/dev/null || true)
if [ -n "$LABELS" ]; then
  (cd "$BUILD" && ctest -L "$LABELS" -j"$JOBS" --output-on-failure \
      >/dev/null)
else
  (cd "$BUILD" && ctest -j"$JOBS" --output-on-failure >/dev/null)
fi

echo "== gcov"
SCRATCH="$BUILD/gcov-report"
rm -rf "$SCRATCH"
mkdir -p "$SCRATCH"
cd "$SCRATCH"
find "$BUILD/src" "$BUILD/tools" -name '*.gcda' -print0 |
  xargs -0 -n 32 gcov -p >/dev/null 2>&1 || true

python3 - "$ROOT" "$MIN_PCT" <<'EOF'
import collections, glob, os, sys

root = os.path.realpath(sys.argv[1]) + os.sep + "src" + os.sep
min_pct = float(sys.argv[2]) if len(sys.argv) > 2 and sys.argv[2] else None
# (source, line) -> covered?  Merged across all objects including a line.
lines = {}
for path in glob.glob("*.gcov"):
    source = None
    with open(path, errors="replace") as fh:
        for raw in fh:
            parts = raw.split(":", 2)
            if len(parts) < 3:
                continue
            count, lineno = parts[0].strip(), parts[1].strip()
            if lineno == "0":
                if parts[2].startswith("Source:"):
                    source = os.path.realpath(parts[2][len("Source:"):].strip())
                    if not source.startswith(root):
                        source = None
                continue
            if source is None or count == "-":
                continue
            key = (source, int(lineno))
            covered = not count.startswith(("#####", "====="))
            lines[key] = lines.get(key, False) or covered

per_module = collections.defaultdict(lambda: [0, 0])  # [covered, total]
for (source, _), covered in lines.items():
    module = source[len(root):].split(os.sep)[0]
    per_module[module][1] += 1
    per_module[module][0] += covered

print()
print(f"{'module':<12} {'lines':>7} {'covered':>8} {'percent':>8}")
tot_cov = tot_all = 0
for module in sorted(per_module):
    cov, all_ = per_module[module]
    tot_cov += cov
    tot_all += all_
    print(f"{module:<12} {all_:>7} {cov:>8} {100.0 * cov / all_:>7.1f}%")
print("-" * 38)
pct = 100.0 * tot_cov / tot_all if tot_all else 0.0
print(f"{'TOTAL':<12} {tot_all:>7} {tot_cov:>8} {pct:>7.1f}%")
if min_pct is not None and pct < min_pct:
    print(f"coverage gate FAILED: {pct:.1f}% < --min {min_pct:.1f}%")
    sys.exit(1)
EOF
