#!/usr/bin/env python3
"""Unit tests for tools/bench_diff.py's comparison core.

Run directly (`python3 tools/test_bench_diff.py`) or from ctest as
`bench_diff_unit`. Pure stdlib unittest — pins the compare() status
taxonomy (ok / REGRESSION / MISSING-FROM-CANDIDATE / new-in-candidate),
the exit codes, and the stderr warning for baseline benchmarks that
vanished from the candidate file.
"""

import contextlib
import io
import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_diff  # noqa: E402


def doc(events=None, ckpts=None):
    out = {}
    if events is not None:
        out["events_per_s"] = events
    if ckpts is not None:
        out["ckpts_per_s"] = ckpts
    return out


def statuses(rows):
    return {f"{m}:{n}": status for m, n, _b, _c, _r, status in rows}


class CompareTest(unittest.TestCase):
    def test_identical_docs_are_all_ok(self):
        base = doc(events={"ring": 1000.0}, ckpts={"ring": 50.0})
        rows, regressions = bench_diff.compare(base, base, 0.10)
        self.assertEqual(regressions, [])
        self.assertEqual(set(statuses(rows).values()), {"ok"})
        self.assertEqual(len(rows), 2)

    def test_regression_beyond_threshold_is_flagged(self):
        base = doc(events={"ring": 1000.0})
        cand = doc(events={"ring": 800.0})  # 0.8 < 1 - 0.10
        rows, regressions = bench_diff.compare(base, cand, 0.10)
        self.assertEqual(statuses(rows)["events_per_s:ring"], "REGRESSION")
        self.assertEqual(len(regressions), 1)
        metric, name, ratio = regressions[0]
        self.assertEqual((metric, name), ("events_per_s", "ring"))
        self.assertAlmostEqual(ratio, 0.8)

    def test_slowdown_within_threshold_is_ok(self):
        base = doc(events={"ring": 1000.0})
        cand = doc(events={"ring": 950.0})
        rows, regressions = bench_diff.compare(base, cand, 0.10)
        self.assertEqual(regressions, [])
        self.assertEqual(statuses(rows)["events_per_s:ring"], "ok")

    def test_missing_from_candidate_is_distinct_status(self):
        base = doc(events={"ring": 1000.0, "tree": 500.0})
        cand = doc(events={"ring": 1000.0})
        rows, regressions = bench_diff.compare(base, cand, 0.10)
        self.assertEqual(regressions, [])  # missing never fails the gate
        self.assertEqual(statuses(rows)["events_per_s:tree"],
                         "MISSING-FROM-CANDIDATE")
        self.assertEqual(statuses(rows)["events_per_s:ring"], "ok")

    def test_new_in_candidate_is_distinct_status(self):
        base = doc(events={"ring": 1000.0})
        cand = doc(events={"ring": 1000.0, "tree": 500.0})
        rows, regressions = bench_diff.compare(base, cand, 0.10)
        self.assertEqual(regressions, [])
        self.assertEqual(statuses(rows)["events_per_s:tree"],
                         "new-in-candidate")

    def test_zero_baseline_never_divides(self):
        base = doc(events={"ring": 0.0})
        cand = doc(events={"ring": 10.0})
        rows, regressions = bench_diff.compare(base, cand, 0.10)
        self.assertEqual(regressions, [])
        self.assertEqual(statuses(rows)["events_per_s:ring"], "ok")


class ReportTest(unittest.TestCase):
    def run_report(self, base, cand, threshold=0.10):
        rows, regressions = bench_diff.compare(base, cand, threshold)
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            code = bench_diff.report(rows, regressions, threshold)
        return code, out.getvalue(), err.getvalue()

    def test_missing_benchmark_warns_on_stderr_but_exits_zero(self):
        base = doc(events={"ring": 1000.0, "tree": 500.0})
        cand = doc(events={"ring": 1000.0})
        code, out, err = self.run_report(base, cand)
        self.assertEqual(code, 0)
        self.assertIn("WARNING", err)
        self.assertIn("missing from the candidate", err)
        self.assertIn("events_per_s:tree", err)
        self.assertIn("MISSING-FROM-CANDIDATE", out)

    def test_clean_comparison_exits_zero_with_quiet_stderr(self):
        base = doc(events={"ring": 1000.0})
        code, out, err = self.run_report(base, base)
        self.assertEqual(code, 0)
        self.assertEqual(err, "")
        self.assertIn("no regression", out)

    def test_regression_exits_nonzero(self):
        base = doc(events={"ring": 1000.0})
        cand = doc(events={"ring": 100.0})
        code, _out, err = self.run_report(base, cand)
        self.assertEqual(code, 1)
        self.assertIn("regressed", err)


if __name__ == "__main__":
    unittest.main()
