#!/usr/bin/env bash
# Build/test matrix (docs/testing.md, "Build matrix"): every supported
# configuration is configured, compiled, and ctest-run. The default matrix
# is what CI gates on; MATRIX_FULL=1 adds the remaining sanitizer build.
#
#   default    — RelWithDebInfo, observability ON (the shipping config)
#   obs-off    — -DACFC_OBS=OFF: the no-op observability stubs must still
#                compile every instrumentation site and pass the suite
#   tsan       — -DACFC_TSAN=ON: the Monte-Carlo pool, the parallel
#                explorer shards, and the supervised runtime under
#                ThreadSanitizer (default: data races in the detection
#                control plane would silently break bit-determinism)
#   asan-ubsan — -DACFC_SANITIZE=address,undefined (MATRIX_FULL=1)
#
#   tools/test_matrix.sh                # default + obs-off + tsan
#   MATRIX_FULL=1 tools/test_matrix.sh  # all four legs
#   MATRIX_LABELS=tier1 tools/test_matrix.sh   # ctest label filter
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"
LABELS="${MATRIX_LABELS-tier1}"

run_leg() {
  local name="$1"
  shift
  local build="$ROOT/build-matrix-$name"
  echo "==== leg: $name ($*)"
  cmake -B "$build" -S "$ROOT" "$@" >/dev/null
  cmake --build "$build" -j"$JOBS" >/dev/null
  if [ -n "$LABELS" ]; then
    (cd "$build" && ctest -L "$LABELS" -j"$JOBS" --output-on-failure)
  else
    (cd "$build" && ctest -j"$JOBS" --output-on-failure)
  fi
  echo "==== leg: $name OK"
}

run_leg default
run_leg obs-off -DACFC_OBS=OFF
run_leg tsan -DACFC_TSAN=ON

if [ "${MATRIX_FULL:-0}" = "1" ]; then
  run_leg asan-ubsan -DACFC_SANITIZE=address,undefined
fi

echo "matrix: all legs passed"
